"""Serving load-test harness: replay a workload trace at a target rate.

:func:`run_loadtest` drives a live :mod:`repro.server` with a recorded
trace and measures what the serving tier actually sustains — requests
per second, per-request latency percentiles, and how much work the
server *shed* (HTTP 429 :class:`~repro.errors.ServerOverloaded`
backpressure, HTTP 504 :class:`~repro.errors.DeadlineExceeded` deadline
misses).  Two modes, matching the two serving surfaces:

* ``mode="stream"`` — one online stream session; the trace is fed in
  release-ordered batches, each feed is one timed request, and the final
  close returns the decision log (so the loadtest doubles as a served
  replay-determinism check);
* ``mode="solve"`` — the trace is cut into windows, each submitted as an
  offline ``/v1/solve`` request through the queue — the mode that
  exercises admission control: pair it with ``deadline_ms=`` and a tight
  ``rate`` to watch 429/504 shedding behave.

Pacing: ``rate`` is *messages per second*; before sending the batch
containing message ``m`` the harness sleeps until ``m / rate`` seconds
into the run (open-loop pacing — a slow server does not slow the offered
load, it sheds).  ``rate=None`` feeds as fast as the server answers
(closed-loop, the throughput probe).

Results go into the ``repro bench loadtest`` suite as ``BENCH_PR9.json``.
"""

from __future__ import annotations

import time
from typing import Any

from ..errors import DeadlineExceeded, ServerOverloaded
from .replay import _as_trace, _batches, _window_document

__all__ = ["run_loadtest", "latency_summary"]

MODES = ("stream", "solve")


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 100])."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


def latency_summary(seconds: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    ordered = sorted(seconds)
    scale = 1e3
    return {
        "p50_ms": _percentile(ordered, 50) * scale,
        "p95_ms": _percentile(ordered, 95) * scale,
        "p99_ms": _percentile(ordered, 99) * scale,
        "mean_ms": (sum(ordered) / len(ordered)) * scale if ordered else 0.0,
        "max_ms": (ordered[-1] if ordered else 0.0) * scale,
    }


def run_loadtest(
    source: Any,
    url: str | None = None,
    *,
    client: Any = None,
    mode: str = "stream",
    rate: float | None = None,
    policy: str = "bfl",
    batch_size: int = 64,
    window: int = 256,
    regime: str = "bufferless",
    method: str = "bfl",
    deadline_ms: float | None = None,
    tenant: str | None = None,
) -> dict[str, Any]:
    """Replay ``source`` (trace/reader/path) against a live server.

    Pass ``url`` (a fresh zero-retry client is built, so every 429/504 is
    *counted* rather than silently retried) or an existing ``client``.
    Returns the report dict described in the module docstring; in stream
    mode it includes the closing result's throughput and decision count,
    so callers can additionally assert replay determinism.
    """
    if mode not in MODES:
        raise ValueError(f"unknown loadtest mode {mode!r}; choose one of {MODES}")
    if rate is not None and rate <= 0:
        raise ValueError(f"rate must be positive (messages/second), got {rate}")
    if (url is None) == (client is None):
        raise ValueError("pass exactly one of url= or client=")
    trace = _as_trace(source)
    owns_client = client is None
    if owns_client:
        from ..client import ReproClient

        # retries=0: a shed must surface as the typed error so it lands
        # in the shed counts, not vanish into a client-side retry loop.
        client = ReproClient(url, retries=0, tenant=tenant)
    try:
        if mode == "stream":
            report = _stream_loadtest(
                trace, client, rate=rate, policy=policy, batch_size=batch_size
            )
        else:
            report = _solve_loadtest(
                trace,
                client,
                rate=rate,
                window=window,
                regime=regime,
                method=method,
                deadline_ms=deadline_ms,
            )
    finally:
        if owns_client:
            client.close()
    report["workload"] = trace.provenance()
    report["topology"] = trace.topology
    report["mode"] = mode
    report["rate_target"] = rate
    return report


def _pace(t0: float, sent: int, rate: float | None) -> None:
    """Open-loop pacing: sleep until message ``sent`` is due."""
    if rate is None:
        return
    due = t0 + sent / rate
    now = time.monotonic()
    if due > now:
        time.sleep(due - now)


def _stream_loadtest(
    trace: Any,
    client: Any,
    *,
    rate: float | None,
    policy: str,
    batch_size: int,
) -> dict[str, Any]:
    latencies: list[float] = []
    shed_429 = shed_504 = 0
    fed = requests = 0
    stream = client.open_stream(
        n=trace.n,
        topology=trace.topology,
        policy=policy,
        workload=trace.provenance(),
    )
    t0 = time.monotonic()
    try:
        for batch in _batches(iter(trace.records), batch_size):
            _pace(t0, fed, rate)
            start = time.monotonic()
            try:
                stream.feed([r.to_dict() for r in batch])
            except ServerOverloaded:
                shed_429 += 1
            except DeadlineExceeded:
                shed_504 += 1
            else:
                fed += len(batch)
                latencies.append(time.monotonic() - start)
            requests += 1
        start = time.monotonic()
        result = stream.close()
        latencies.append(time.monotonic() - start)
        requests += 1
    except BaseException:
        if not stream.closed:
            import contextlib

            with contextlib.suppress(Exception):
                stream.abandon()
        raise
    elapsed = time.monotonic() - t0
    return {
        "messages": len(trace.records),
        "fed": fed,
        "requests": requests,
        "seconds": elapsed,
        "rate_achieved": fed / elapsed if elapsed > 0 else 0.0,
        "latency": latency_summary(latencies),
        "shed": {"429": shed_429, "504": shed_504},
        "throughput": result.throughput,
        "decisions": len(result.decisions),
        "policy": policy,
    }


def _solve_loadtest(
    trace: Any,
    client: Any,
    *,
    rate: float | None,
    window: int,
    regime: str,
    method: str,
    deadline_ms: float | None,
) -> dict[str, Any]:
    from ..api import parse_instance

    latencies: list[float] = []
    shed_429 = shed_504 = 0
    sent = requests = delivered = solved = 0
    t0 = time.monotonic()
    for batch in _batches(iter(trace.records), window):
        _pace(t0, sent, rate)
        instance = parse_instance(_window_document(trace.topology, trace.n, batch))
        start = time.monotonic()
        try:
            result = client.solve(
                instance,
                regime,
                method,
                deadline_ms=deadline_ms,
                workload=trace.provenance(),
            )
        except ServerOverloaded:
            shed_429 += 1
        except DeadlineExceeded:
            shed_504 += 1
        else:
            latencies.append(time.monotonic() - start)
            delivered += result.delivered
            solved += 1
        sent += len(batch)
        requests += 1
    elapsed = time.monotonic() - t0
    return {
        "messages": sent,
        "requests": requests,
        "solved": solved,
        "seconds": elapsed,
        "rate_achieved": sent / elapsed if elapsed > 0 else 0.0,
        "latency": latency_summary(latencies),
        "shed": {"429": shed_429, "504": shed_504},
        "delivered": delivered,
        "regime": regime,
        "method": method,
        "window": window,
    }
