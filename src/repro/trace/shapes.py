"""Seeded traffic-shape generators that produce *traces*, not instances.

The legacy workload generators (:mod:`repro.workloads`) materialize an
``Instance`` in memory.  The shapes here model production traffic and
**stream**: each is a generator function yielding
:class:`~repro.trace.TraceRecord` objects one at a time in nondecreasing
release order, drawing randomness in fixed-size vectorized chunks so a
million-message trace generates fast with O(chunk) memory.  Determinism:
the record stream is a pure function of ``(shape, seed, parameters)`` —
independent of how it is consumed (materialized, written to disk, or fed
to a server) — which is what makes record/replay and the disk/in-memory
parity tests possible.

Shapes
------
``uniform``
    The streaming twin of ``workloads.general_instance``: Poisson
    arrivals at a constant rate, uniform endpoints and slacks.  The
    workhorse for million-message scale runs.
``bursty``
    Idle gaps punctuated by bursts: a whole session's worth of messages
    lands in one step (think request fan-out or a cache stampede), then
    silence drawn from a geometric gap.  Stresses admission: the
    scan-line kernel sees deep contention at burst instants.
``diurnal``
    A sinusoidal load curve — the classic day/night cycle scaled down to
    ``period`` steps; per-step arrival counts are Poisson with the
    time-varying rate.  Exercises schedulers across load regimes inside
    one run.
``hotspot``
    Destination skew: destinations cluster around one node (width
    ``width``), sources are uniform — the links feeding the hotspot
    saturate first, the adversarial shape for bufferless scheduling.
``adversarial``
    Single-link contention: every message crosses one designated link
    inside a tight deadline window, so bufferless throughput is capped
    by that link's capacity and every admission choice matters.  The
    online/bounded-buffer literature evaluates exactly this family.

Each shape works on ``topology="line"`` and (except ``adversarial``'s
link pinning, which wraps) ``"ring"``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator

import numpy as np

from ..workloads._seeding import coerce_rng
from .format import TraceRecord, TraceWriter, WorkloadTrace, mint_trace_id

__all__ = ["SHAPES", "shape_records", "shape_trace", "write_shape_trace"]

#: Messages drawn per vectorized chunk.  A fixed constant (never adapted
#: to trace length) so the stream is identical however far it is read.
_CHUNK = 8192


def _spans(rng: np.random.Generator, n: int, size: int, topology: str) -> np.ndarray:
    """Uniform spans: 1..n-1 hops (both topologies)."""
    return rng.integers(1, n, size=size)


def _sources(
    rng: np.random.Generator, n: int, spans: np.ndarray, topology: str
) -> np.ndarray:
    if topology == "ring":
        return rng.integers(0, n, size=len(spans))
    return rng.integers(0, n - spans)


def _dests(n: int, sources: np.ndarray, spans: np.ndarray, topology: str) -> np.ndarray:
    if topology == "ring":
        return (sources + spans) % n
    return sources + spans


def _emit(
    start_id: int,
    sources: np.ndarray,
    dests: np.ndarray,
    releases: np.ndarray,
    deadlines: np.ndarray,
) -> Iterator[TraceRecord]:
    for i in range(len(sources)):
        yield TraceRecord(
            id=start_id + i,
            source=int(sources[i]),
            dest=int(dests[i]),
            release=int(releases[i]),
            deadline=int(deadlines[i]),
        )


def _rate_stream(
    rng: np.random.Generator,
    n: int,
    messages: int,
    topology: str,
    max_slack: int,
    rate_at: Callable[[np.ndarray], np.ndarray],
) -> Iterator[TraceRecord]:
    """Common engine: Poisson per-step arrival counts with a (possibly
    time-varying) rate, endpoints uniform, slack uniform."""
    emitted = 0
    t = 0
    while emitted < messages:
        steps = np.arange(t, t + _CHUNK, dtype=np.int64)
        counts = rng.poisson(np.clip(rate_at(steps), 0.0, None))
        total = int(counts.sum())
        if total == 0:
            t += _CHUNK
            continue
        releases = np.repeat(steps, counts)
        spans = _spans(rng, n, total, topology)
        sources = _sources(rng, n, spans, topology)
        slacks = rng.integers(0, max_slack + 1, size=total)
        take = min(total, messages - emitted)
        yield from _emit(
            emitted,
            sources[:take],
            _dests(n, sources, spans, topology)[:take],
            releases[:take],
            (releases + spans + slacks)[:take],
        )
        emitted += take
        t += _CHUNK


def _uniform(
    rng: np.random.Generator,
    *,
    n: int,
    messages: int,
    topology: str,
    rate: float = 4.0,
    max_slack: int = 8,
) -> Iterator[TraceRecord]:
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return _rate_stream(
        rng, n, messages, topology, max_slack, lambda t: np.full(len(t), rate)
    )


def _diurnal(
    rng: np.random.Generator,
    *,
    n: int,
    messages: int,
    topology: str,
    period: int = 256,
    peak: float = 8.0,
    trough: float = 0.5,
    max_slack: int = 8,
) -> Iterator[TraceRecord]:
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    if not 0 <= trough <= peak:
        raise ValueError(f"need 0 <= trough <= peak, got {trough} > {peak}")

    def rate_at(t: np.ndarray) -> np.ndarray:
        phase = np.sin(2.0 * math.pi * t / period)
        return trough + (peak - trough) * (1.0 + phase) / 2.0

    return _rate_stream(rng, n, messages, topology, max_slack, rate_at)


def _bursty(
    rng: np.random.Generator,
    *,
    n: int,
    messages: int,
    topology: str,
    burst: int = 12,
    gap: float = 6.0,
    max_slack: int = 6,
) -> Iterator[TraceRecord]:
    """Bursts of ~``burst`` messages separated by geometric idle gaps."""
    if burst < 1:
        raise ValueError(f"burst must be >= 1, got {burst}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    emitted = 0
    t = 0
    while emitted < messages:
        sizes = rng.poisson(burst, size=256) + 1
        gaps = rng.geometric(1.0 / gap, size=256)
        for size, idle in zip(sizes, gaps):
            size = int(min(size, messages - emitted))
            if size <= 0:
                break
            spans = _spans(rng, n, size, topology)
            sources = _sources(rng, n, spans, topology)
            slacks = rng.integers(0, max_slack + 1, size=size)
            releases = np.full(size, t, dtype=np.int64)
            yield from _emit(
                emitted,
                sources,
                _dests(n, sources, spans, topology),
                releases,
                releases + spans + slacks,
            )
            emitted += size
            t += int(idle)
        # sizes/gaps chunk exhausted; loop draws the next chunk


def _hotspot(
    rng: np.random.Generator,
    *,
    n: int,
    messages: int,
    topology: str,
    hotspot: int | None = None,
    width: int = 2,
    rate: float = 4.0,
    max_slack: int = 6,
) -> Iterator[TraceRecord]:
    """Destination skew onto one node; sources uniform."""
    if hotspot is None:
        hotspot = 3 * n // 4 if topology == "line" else 0
    if topology == "line" and not (1 <= hotspot <= n - 1):
        raise ValueError("hotspot must be an interior node")
    if topology == "ring" and not (0 <= hotspot < n):
        raise ValueError("hotspot must be a ring node")
    emitted = 0
    t = 0
    while emitted < messages:
        steps = np.arange(t, t + _CHUNK, dtype=np.int64)
        counts = rng.poisson(rate, size=_CHUNK)
        total = int(counts.sum())
        if total == 0:
            t += _CHUNK
            continue
        releases = np.repeat(steps, counts)
        offsets = rng.integers(-width, width + 1, size=total)
        if topology == "ring":
            dests = (hotspot + offsets) % n
            spans = rng.integers(1, n, size=total)
            sources = (dests - spans) % n
        else:
            dests = np.clip(hotspot + offsets, 1, n - 1)
            sources = (rng.random(total) * dests).astype(np.int64)
            spans = dests - sources
        slacks = rng.integers(0, max_slack + 1, size=total)
        take = min(total, messages - emitted)
        yield from _emit(
            emitted,
            sources[:take],
            dests[:take],
            releases[:take],
            (releases + spans + slacks)[:take],
        )
        emitted += take
        t += _CHUNK


def _adversarial(
    rng: np.random.Generator,
    *,
    n: int,
    messages: int,
    topology: str,
    link: int | None = None,
    window: int = 4,
    max_slack: int = 1,
) -> Iterator[TraceRecord]:
    """Single-link contention: every message crosses link ``(link,
    link+1)`` within ``window`` steps of release, with near-zero slack —
    so the link admits at most ``window + max_slack`` of each cohort and
    every admission decision is consequential."""
    if link is None:
        link = n // 2
    if topology == "line" and not (0 <= link <= n - 2):
        raise ValueError(f"link must be 0..{n - 2}, got {link}")
    if topology == "ring" and not (0 <= link <= n - 1):
        raise ValueError(f"link must be 0..{n - 1}, got {link}")
    emitted = 0
    t = 0
    while emitted < messages:
        cohort = int(rng.integers(window, 3 * window + 1))
        cohort = min(cohort, messages - emitted)
        if topology == "ring":
            back = rng.integers(0, n - 1, size=cohort)
            sources = (link - back) % n
            fwd = rng.integers(1, np.maximum(n - back, 2))
            dests = (link + fwd) % n
            spans = (dests - sources) % n
        else:
            sources = rng.integers(0, link + 1, size=cohort)
            dests = rng.integers(link + 1, n, size=cohort)
            spans = dests - sources
        slacks = rng.integers(0, max_slack + 1, size=cohort)
        releases = np.full(cohort, t, dtype=np.int64)
        yield from _emit(emitted, sources, dests, releases, releases + spans + slacks)
        emitted += cohort
        t += int(rng.integers(1, window + 1))


#: shape name -> streaming generator (rng, *, n, messages, topology, **params)
SHAPES: dict[str, Callable[..., Iterator[TraceRecord]]] = {
    "uniform": _uniform,
    "bursty": _bursty,
    "diurnal": _diurnal,
    "hotspot": _hotspot,
    "adversarial": _adversarial,
}


def shape_records(
    shape: str,
    rng: Any,
    *,
    n: int = 32,
    messages: int = 1000,
    topology: str = "line",
    **params: Any,
) -> Iterator[TraceRecord]:
    """The streaming record iterator for one shape (O(chunk) memory).

    ``rng`` follows the workloads seeding convention: a numpy
    ``Generator``, ``SeedSequence`` or plain int seed.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown traffic shape {shape!r}; choose one of {tuple(SHAPES)}")
    if topology not in ("line", "ring"):
        raise ValueError(f"traffic shapes support line and ring, got {topology!r}")
    if messages < 0:
        raise ValueError(f"messages must be >= 0, got {messages}")
    if n < 2 or (topology == "ring" and n < 3):
        raise ValueError(f"network too small for a {topology} shape: n={n}")
    return SHAPES[shape](
        coerce_rng(rng), n=n, messages=messages, topology=topology, **params
    )


def shape_trace(
    shape: str,
    seed: int,
    *,
    n: int = 32,
    messages: int = 1000,
    topology: str = "line",
    trace_id: str | None = None,
    **params: Any,
) -> WorkloadTrace:
    """Materialize one shape as an in-memory :class:`WorkloadTrace`
    (byte-identical to writing :func:`shape_records` to disk and reading
    it back — the parity the streaming tests assert)."""
    spec = {
        "shape": shape,
        "seed": seed,
        "n": n,
        "messages": messages,
        "topology": topology,
        **params,
    }
    return WorkloadTrace(
        trace_id=trace_id or mint_trace_id(),
        n=n,
        records=tuple(
            shape_records(
                shape, seed, n=n, messages=messages, topology=topology, **params
            )
        ),
        topology=topology,
        shape=shape,
        seed=seed,
        spec=spec,
    )


def write_shape_trace(
    path: Any,
    shape: str,
    seed: int,
    *,
    n: int = 32,
    messages: int = 1000,
    topology: str = "line",
    trace_id: str | None = None,
    **params: Any,
) -> int:
    """Generate a shape straight to disk with bounded memory; returns the
    record count.  The million-message path: nothing here ever holds more
    than one vectorized chunk."""
    spec = {
        "shape": shape,
        "seed": seed,
        "n": n,
        "messages": messages,
        "topology": topology,
        **params,
    }
    with TraceWriter(
        path,
        n=n,
        topology=topology,
        trace_id=trace_id,
        shape=shape,
        seed=seed,
        spec=spec,
    ) as writer:
        for record in shape_records(
            shape, seed, n=n, messages=messages, topology=topology, **params
        ):
            writer.add(record)
        return writer.count
