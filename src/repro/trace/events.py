"""Event tracing for simulator runs (per-packet lifecycle).

:class:`TracingPolicy` wraps any policy and records a chronological event
log (releases, forwards, idles, deliveries, drops, control traffic)
without changing the wrapped policy's behaviour — the decorator pattern
keeps the simulator itself observation-free.  Useful for debugging
distributed policies and for asserting fine-grained behaviour in tests.

Vocabulary note: this is the **event** trace — what each packet *did*
inside one simulation.  It is distinct from the **workload** traces of
:mod:`repro.trace.format` (what arrived, when — the replayable input)
and from the observability traces of :mod:`repro.obs` (spans and
counters about the code).  See the vocabulary table in ``docs/api.md``.
This module moved here from ``repro.network.trace`` so the three live
side by side; the old home remains as a deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..network.packet import Packet
from ..network.policy import NodeView, Policy

__all__ = ["TraceEvent", "TracingPolicy"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``release, forward, idle, deliver, drop, control``;
    ``message_id`` is ``None`` for node-level events (idle, control).
    """

    time: int
    kind: str
    node: int
    message_id: int | None = None
    detail: str = ""


class TracingPolicy(Policy):
    """Record every observable event while delegating to ``inner``."""

    def __init__(self, inner: Policy) -> None:
        self.inner = inner
        self.events: list[TraceEvent] = []
        # Transparent wrapper: fast-forwarding is safe exactly when it is
        # safe for the wrapped policy (idle steps produce no events).
        self.idle_skippable = inner.idle_skippable

    # ------------------------------------------------------------------ #

    def reset(self, n: int) -> None:
        self.events.clear()
        self.inner.reset(n)

    def select(self, view: NodeView) -> Packet | None:
        chosen = self.inner.select(view)
        if chosen is None:
            if view.candidates:
                self.events.append(
                    TraceEvent(view.time, "idle", view.node, None,
                               f"{len(view.candidates)} buffered")
                )
        else:
            self.events.append(
                TraceEvent(view.time, "forward", view.node, chosen.id,
                           f"-> {view.node + 1}")
            )
        return chosen

    def emit_control(self, node: int, time: int) -> Hashable | None:
        value = self.inner.emit_control(node, time)
        if value is not None:
            self.events.append(TraceEvent(time, "control", node, None, repr(value)))
        return value

    def receive_control(self, node: int, time: int, value: Hashable) -> None:
        self.inner.receive_control(node, time, value)

    def on_release(self, packet: Packet, time: int) -> None:
        self.events.append(TraceEvent(time, "release", packet.node, packet.id))
        self.inner.on_release(packet, time)

    def on_deliver(self, packet: Packet, time: int) -> None:
        self.events.append(TraceEvent(time, "deliver", packet.node, packet.id))
        self.inner.on_deliver(packet, time)

    def on_drop(self, packet: Packet, time: int) -> None:
        self.events.append(TraceEvent(time, "drop", packet.node, packet.id))
        self.inner.on_drop(packet, time)

    # ------------------------------------------------------------------ #

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_message(self, message_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.message_id == message_id]

    def render(self, *, limit: int | None = None) -> str:
        """Human-readable chronological log."""
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(
            f"t={e.time:<4} {e.kind:<8} node {e.node:<3}"
            + (f" msg {e.message_id}" if e.message_id is not None else "")
            + (f"  {e.detail}" if e.detail else "")
            for e in rows
        )
