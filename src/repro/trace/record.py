"""Recording: turn any run's arrivals into a replayable workload trace.

Three entry points, one per place a workload lives:

* :func:`record_instance` — an in-memory instance (any topology) becomes
  a :class:`~repro.trace.WorkloadTrace` in canonical revelation order;
* :class:`TraceRecorder` — an incremental sink for arrivals as they
  happen: attach one to a served session
  (``client.open_stream(recorder=...)``) or feed it manually alongside
  any online run.  In-memory by default; give it a ``path`` and it
  streams through a :class:`~repro.trace.TraceWriter` with bounded
  memory instead;
* :func:`record_online` — run an online policy on an instance and return
  ``(trace, result)`` with the trace's provenance already stamped on the
  result, the one-call version of record-then-replay.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from .format import TraceRecord, TraceWriter, WorkloadTrace, mint_trace_id

__all__ = ["TraceRecorder", "record_instance", "record_online"]


def record_instance(
    instance: Any,
    *,
    trace_id: str | None = None,
    shape: str | None = None,
    seed: int | None = None,
    spec: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
) -> WorkloadTrace:
    """Record an instance's arrival stream as a workload trace.

    Provenance (``shape``/``seed``/``spec``) is whatever the caller knows
    about where the instance came from; replaying the trace reproduces
    the instance exactly (same messages, canonical release-then-id
    order).
    """
    return WorkloadTrace.from_instance(
        instance, trace_id=trace_id, shape=shape, seed=seed, spec=spec, meta=meta
    )


class TraceRecorder:
    """An incremental arrival sink that finalizes into a trace.

    In-memory mode (default) accumulates records and hands back a
    :class:`WorkloadTrace` from :meth:`trace`.  Disk mode (``path=``)
    streams every arrival through a :class:`TraceWriter` instead — O(1)
    memory, for sessions of unbounded length; ``n`` is required there
    because the header is written up front.

    Arrivals may be message objects, :class:`TraceRecord` s, or plain
    dicts (the client's wire rows), and must arrive in nondecreasing
    release order — the same contract every stream consumer enforces.
    """

    def __init__(
        self,
        *,
        n: int | tuple[int, int] | None = None,
        topology: str = "line",
        trace_id: str | None = None,
        shape: str | None = None,
        seed: int | None = None,
        spec: dict[str, Any] | None = None,
        meta: dict[str, Any] | None = None,
        path: str | Path | None = None,
    ) -> None:
        self.n = n
        self.topology = topology
        self.trace_id = trace_id or mint_trace_id()
        self.shape = shape
        self.seed = seed
        self.spec = spec
        self.meta = dict(meta or {})
        self._records: list[TraceRecord] | None = None
        self._writer: TraceWriter | None = None
        self._last_release: int | None = None
        if path is not None:
            if n is None:
                raise ValueError("a disk-backed TraceRecorder needs n=")
            self._writer = TraceWriter(
                path,
                n=n,
                topology=topology,
                trace_id=self.trace_id,
                shape=shape,
                seed=seed,
                spec=spec,
                meta=self.meta,
            )
        else:
            self._records = []

    @property
    def count(self) -> int:
        if self._writer is not None:
            return self._writer.count
        return len(self._records or ())

    def provenance(self) -> dict[str, Any]:
        """The ``workload`` block for results produced from this trace."""
        return {"trace_id": self.trace_id, "shape": self.shape, "seed": self.seed}

    def add(self, message: Any) -> None:
        rec = TraceRecord.from_message(message)
        if self._writer is not None:
            self._writer.add(rec)
            return
        if self._last_release is not None and rec.release < self._last_release:
            raise ValueError(
                f"arrival {rec.id} released at {rec.release}, before the "
                f"previously recorded release {self._last_release}"
            )
        self._last_release = rec.release
        self._records.append(rec)  # type: ignore[union-attr]

    def add_many(self, messages: Iterable[Any]) -> int:
        before = self.count
        for m in messages:
            self.add(m)
        return self.count - before

    def trace(self, *, n: int | tuple[int, int] | None = None) -> WorkloadTrace:
        """Finalize the in-memory recording as a :class:`WorkloadTrace`."""
        if self._records is None:
            raise ValueError(
                "a disk-backed TraceRecorder has no in-memory trace; "
                "close() it and read the file back with read_trace/open_trace"
            )
        size = n if n is not None else self.n
        if size is None:
            raise ValueError("trace() needs n= (not given at construction)")
        return WorkloadTrace(
            trace_id=self.trace_id,
            n=size,
            records=tuple(self._records),
            topology=self.topology,
            shape=self.shape,
            seed=self.seed,
            spec=self.spec,
            meta=self.meta,
        )

    def close(self) -> int:
        """Finalize (flushes and headers the file in disk mode); returns
        the record count."""
        if self._writer is not None:
            self._writer.close()
        return self.count

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if self._writer is not None:
            self._writer.__exit__(exc_type, *exc_info)


def record_online(
    instance: Any,
    policy: str = "bfl",
    *,
    shape: str | None = None,
    seed: int | None = None,
    spec: dict[str, Any] | None = None,
    **opts: Any,
) -> tuple[WorkloadTrace, Any]:
    """Record ``instance`` as a trace, run ``policy`` on it, return both.

    The returned :class:`~repro.online.StreamResult` carries the trace's
    provenance in its ``workload`` block, so ``result.to_dict()`` is
    byte-identical to replaying the trace later (local or served).
    """
    import dataclasses

    from ..online import run_online

    trace = record_instance(instance, shape=shape, seed=seed, spec=spec)
    result = run_online(instance, policy, **opts)
    result = dataclasses.replace(result, workload=trace.provenance())
    return trace, result
