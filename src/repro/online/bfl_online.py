"""``online_bfl`` — incremental scan-line admission for streamed arrivals.

The offline BFL kernel (:mod:`repro.core.bfl_fast`) sweeps every scan
line of a fully known instance.  The online variant cannot: messages are
revealed at their release times and a launch is irrevocable the moment a
message boards a line.  The rule implemented here is *replan-at-arrival*:

* the admission state is a set of per-line **reservations** — the
  ``[source, dest)`` diagonal segments of every message already launched
  (those are physically committed; a bufferless message cannot leave its
  line);
* whenever new messages arrive, the planner re-runs the BFL sweep over
  the currently *pending* (revealed, unlaunched, unexpired) messages,
  with two modifications to the offline kernel's ao-parameter
  bookkeeping: a message's entry line is capped at ``source - now`` (a
  departure cannot be scheduled in the past), and the per-line
  earliest-right-endpoint greedy skips any segment overlapping an
  existing reservation;
* plan entries are provisional until their departure step: a later
  arrival may revise them.  Commitment happens exactly at departure
  (``t = source - alpha``) — the launch is logged, the segment is
  reserved, and the decision can never be revisited;
* a pending message whose ``latest_departure`` passes without a launch
  is dropped — attributed to the *policy*.

Between events the run fast-forwards (epoch batching): with no pending
work, time jumps to the next release; with a plan standing, to the next
departure/expiry.  Fault runs (``faults=``) step uniformly instead, like
the simulator, because in-flight packets need per-step checks: a launch
into a blocked link is refused (the message stays pending and the plan
is rebuilt), while an in-flight message meeting a dead link, a stalled
node, or the plan's drop coin is lost — a *fault* drop, reported
separately from policy drops.  Reservations of fault-lost messages stay
in place: the line capacity up to the loss point was genuinely spent.

On a **single-release stream** (all messages share one release time) the
first replan sees the entire instance with no reservations, so the plan
— and therefore the delivered set and every delivery line — coincides
exactly with offline :func:`~repro.core.bfl_fast.bfl_fast`, inheriting
BFL's 2-approximation of ``OPT_BL`` (Theorem 3.2).  Property tests
assert both the coincidence and the ½·OPT_BL floor.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_right, insort

from .. import obs
from ..core.instance import Instance
from ..core.message import Direction, Message
from ..core.schedule import Schedule
from ..core.trajectory import bufferless_trajectory
from ..network.faults import FaultPlan
from .stream import Decision, StreamResult

__all__ = ["online_bfl"]


def _fits(occupied: list[tuple[int, int]], start: int, end: int) -> bool:
    """Whether segment ``[start, end)`` avoids every reserved interval."""
    if not occupied:
        return True
    i = bisect_right(occupied, (start,))
    if i > 0 and occupied[i - 1][1] > start:
        return False
    return not (i < len(occupied) and occupied[i][0] < end)


def _plan(
    pending: list[Message],
    now: int,
    reserved: dict[int, list[tuple[int, int]]],
) -> dict[int, int]:
    """One BFL sweep over the pending set; returns ``{message_id: alpha}``.

    Identical to the :func:`~repro.core.bfl_fast.bfl_fast` kernel —
    entry buckets on the first relevant line, key-sorted active set,
    expiry heap, earliest-right-endpoint greedy per line — except that
    entry is capped at ``source - now`` (no departures in the past) and
    segments overlapping a reservation are passed over (they stay active
    for lower lines).
    """
    cols = [
        (m.source, m.dest, m.id, m.alpha_min, min(m.alpha_max, m.source - now))
        for m in pending
        if min(m.alpha_max, m.source - now) >= m.alpha_min
    ]
    k = len(cols)
    if k == 0:
        return {}
    src = [c[0] for c in cols]
    dst = [c[1] for c in cols]
    mid = [c[2] for c in cols]
    amin = [c[3] for c in cols]
    amax = [c[4] for c in cols]

    entry = sorted(range(k), key=lambda j: -amax[j])
    ei = 0
    active: list[tuple[int, int, int, int]] = []  # (dest, -source, id, j)
    live_active = 0
    dead = [False] * k
    expiry: list[tuple[int, int]] = []  # max-heap on alpha_min

    assignment: dict[int, int] = {}
    alpha = amax[entry[0]]
    while True:
        while ei < k and amax[entry[ei]] >= alpha:
            j = entry[ei]
            ei += 1
            insort(active, (dst[j], -src[j], mid[j], j))
            heapq.heappush(expiry, (-amin[j], j))
            live_active += 1

        taken = reserved.get(alpha)
        pos = None
        survivors = []
        for item in active:
            j = item[3]
            if dead[j]:
                continue
            if (pos is None or src[j] >= pos) and (
                taken is None or _fits(taken, src[j], dst[j])
            ):
                assignment[mid[j]] = alpha
                dead[j] = True
                live_active -= 1
                pos = dst[j]
            else:
                survivors.append(item)
        active = survivors

        while expiry and -expiry[0][0] > alpha - 1:
            j = heapq.heappop(expiry)[1]
            if not dead[j]:
                dead[j] = True
                live_active -= 1

        if live_active > 0:
            alpha -= 1
        elif ei < k:
            alpha = amax[entry[ei]]
        else:
            break
    return assignment


def online_bfl(
    instance: Instance,
    *,
    faults: FaultPlan | None = None,
    backend: str | None = None,
) -> StreamResult:
    """Stream ``instance`` through the incremental scan-line admitter.

    ``backend`` is accepted for facade uniformity; the replan sweep is
    reservation-aware and has no vectorized twin yet, so a ``"numpy"``
    request falls back to this python implementation (counted under
    ``backend.fallbacks``).
    """
    from ..backend import fall_back, resolve_backend

    if resolve_backend(backend) == "numpy":
        fall_back("online_bfl")
    for m in instance:
        if m.direction != Direction.LEFT_TO_RIGHT:
            raise ValueError(
                f"message {m.id} travels right-to-left; split directions first"
            )
    tr = obs.tracer()
    t0 = time.perf_counter() if tr.enabled else 0.0

    arrivals: dict[int, list[Message]] = {}
    for m in instance:
        arrivals.setdefault(m.release, []).append(m)
    for group in arrivals.values():
        group.sort(key=lambda m: m.id)

    if faults is not None and not isinstance(faults, FaultPlan):
        raise TypeError(f"faults must be a FaultPlan or None, got {faults!r}")
    if faults is not None and not faults.active:
        faults = None
    drop_rng = (
        faults.drop_rng() if faults is not None and faults.drop_rate > 0 else None
    )

    pending: dict[int, Message] = {}
    planned: dict[int, int] = {}
    reserved: dict[int, list[tuple[int, int]]] = {}
    # in-flight (fault runs only): [message, current node, alpha]
    in_flight: list[list] = []

    decisions: list[Decision] = []
    trajectories = []
    delivered: list[int] = []
    dropped: dict[int, str] = {}
    replans = blocked_launches = wait_steps = steps = 0
    need_replan = False

    def drop(m: Message, at: int, reason: str) -> None:
        dropped[m.id] = reason
        decisions.append(Decision(m.id, "drop", at, reason=reason))

    t = 0 if faults is not None else (min(arrivals) if arrivals else 0)
    while arrivals or pending or in_flight:
        if faults is None:
            # Epoch batching: jump straight to the next event — a release,
            # a planned departure, or a pending message expiring.
            nxt = []
            if arrivals:
                nxt.append(min(arrivals))
            for i, alpha in planned.items():
                nxt.append(pending[i].source - alpha)
            nxt.extend(
                m.latest_departure + 1 for i, m in pending.items() if i not in planned
            )
            t = max(t, min(nxt))
        steps += 1

        # In-flight traversal (fault runs): each live packet crosses the
        # link at its current node during [t, t+1] — unless the plan took
        # the link down, stalled the node, or the drop coin fires.
        if in_flight:
            keep = []
            for rec in in_flight:
                m, node, alpha = rec
                if faults.link_down(node, t) or faults.node_stalled(node, t):
                    drop(m, t, "fault")  # bufferless: it cannot wait out the outage
                elif drop_rng is not None and drop_rng.random() < faults.drop_rate:
                    drop(m, t, "fault")  # lost on the crossing itself
                elif node + 1 == m.dest:
                    delivered.append(m.id)
                    trajectories.append(bufferless_trajectory(m, alpha))
                else:
                    rec[1] = node + 1
                    keep.append(rec)
            in_flight = keep

        for m in arrivals.pop(t, ()):
            if not m.feasible:
                drop(m, t, "policy")  # revealed already hopeless
            else:
                pending[m.id] = m
                need_replan = True

        for i in [i for i, m in pending.items() if m.latest_departure < t]:
            drop(pending.pop(i), t, "policy")
            planned.pop(i, None)

        if need_replan:
            planned = _plan(list(pending.values()), t, reserved)
            replans += 1
            need_replan = False

        # Commit every plan entry whose departure step is now.  Higher
        # lines first — the same commitment order the offline sweep uses.
        due = sorted(
            (i for i, alpha in planned.items() if pending[i].source - alpha == t),
            key=lambda i: (-planned[i], i),
        )
        for i in due:
            m = pending[i]
            if faults is not None and faults.sending_blocked(m.source, t):
                # Refused launch, not a loss: the message stays pending
                # and the planner reroutes it next step.
                del planned[i]
                blocked_launches += 1
                need_replan = True
                continue
            alpha = planned.pop(i)
            del pending[i]
            insort(reserved.setdefault(alpha, []), (m.source, m.dest))
            wait_steps += t - m.release
            decisions.append(Decision(m.id, "launch", t, alpha=alpha))
            if tr.enabled:
                tr.event("online.admit", message=m.id, alpha=alpha, wait=t - m.release)
            if faults is not None:
                in_flight.append([m, m.source, alpha])
            else:
                delivered.append(m.id)
                trajectories.append(bufferless_trajectory(m, alpha))

        t += 1

    schedule = Schedule(tuple(trajectories))
    stats = {
        "replans": replans,
        "blocked_launches": blocked_launches,
        "admission_wait_steps": wait_steps,
    }
    if tr.enabled:
        tr.count("online.runs")
        tr.count("online.launches", len(decisions) - len(dropped))
        tr.count("online.drops.policy", sum(1 for r in dropped.values() if r == "policy"))
        tr.count("online.drops.fault", sum(1 for r in dropped.values() if r == "fault"))
        tr.count("online.replans", replans)
        tr.count("online.steps", steps)
        tr.record_span(
            "online.run",
            t0,
            policy="bfl",
            n=instance.n,
            k=len(instance),
            delivered=len(delivered),
        )
    return StreamResult(
        policy="bfl",
        schedule=schedule,
        delivered_ids=frozenset(delivered),
        dropped=dropped,
        decisions=tuple(decisions),
        steps=steps,
        stats=stats,
    )
