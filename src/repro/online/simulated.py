"""Simulator-backed online policies: ``online_dbfl`` and ``online_greedy``.

D-BFL and the buffered per-link heuristics already *are* online
algorithms — every decision at node ``v``, step ``t`` uses only what has
physically reached ``v`` by ``t`` (the simulator enforces this; see
:mod:`repro.network.policy`).  These wrappers run them through
:class:`~repro.network.simulator.LinearNetworkSimulator` and re-express
the run in the stream vocabulary: a :class:`~repro.online.stream.Decision`
log (launch = first link crossing; drop attribution from the simulator's
``drop_events``) and a :class:`~repro.online.stream.StreamResult`.

Drop attribution: the simulator's ``"fault"`` drops are *fault* drops;
``"deadline"`` (starved until hopeless, or past the horizon) and
``"buffer_full"`` (finite buffer full — a consequence of the policy's
forwarding choices) are *policy* drops.
"""

from __future__ import annotations

import time

from .. import obs
from ..buffers import DEFAULT_ADMISSION
from ..core.instance import Instance
from ..network.faults import FaultPlan
from ..network.policy import Policy
from ..network.simulator import SimulationResult, simulate
from .stream import Decision, StreamResult

__all__ = ["online_dbfl", "online_greedy"]

GREEDY_POLICIES = ("edf", "fcfs", "laxity", "nearest")


def _to_stream_result(
    name: str,
    result: SimulationResult,
    extra_stats: dict | None = None,
    topology: str = "line",
) -> StreamResult:
    launches = [
        # depart == first link crossing on every topology's trajectory type
        Decision(traj.message_id, "launch", traj.depart)
        for traj in result.schedule.trajectories
    ]
    dropped: dict[int, str] = {}
    drops = []
    for mid, at, why in result.drop_events:
        reason = "fault" if why == "fault" else "policy"
        dropped[mid] = reason
        drops.append(Decision(mid, "drop", at, reason=reason))
    decisions = tuple(sorted(launches + drops, key=lambda d: (d.time, d.message_id)))
    st = result.stats
    stats = {
        "fault_drops": st.fault_drops,
        "link_down_blocks": st.link_down_blocks,
        "stall_blocks": st.stall_blocks,
        "buffer_overflow_drops": st.buffer_overflow_drops,
        **(extra_stats or {}),
    }
    return StreamResult(
        policy=name,
        schedule=result.schedule,
        delivered_ids=result.delivered_ids,
        dropped=dropped,
        decisions=decisions,
        steps=st.steps,
        stats=stats,
        topology=topology,
    )


def _traced(name: str, instance: Instance, run) -> StreamResult:
    tr = obs.tracer()
    t0 = time.perf_counter() if tr.enabled else 0.0
    out = _to_stream_result(
        name, run(), topology=getattr(instance, "topology", "line")
    )
    if tr.enabled:
        tr.count("online.runs")
        tr.count("online.launches", out.throughput + len(out.fault_dropped_ids))
        tr.count("online.drops.policy", len(out.policy_dropped_ids))
        tr.count("online.drops.fault", len(out.fault_dropped_ids))
        tr.count("online.steps", out.steps)
        tr.record_span(
            "online.run",
            t0,
            policy=name,
            n=getattr(instance, "n", None),
            k=len(instance),
            delivered=out.throughput,
        )
    return out


def online_dbfl(
    instance: Instance,
    *,
    buffer_capacity: int | None = None,
    admission: str = DEFAULT_ADMISSION,
    faults: FaultPlan | None = None,
    backend: str | None = None,
) -> StreamResult:
    """The paper's distributed online rule, streamed through the simulator.

    ``backend`` is forwarded to the simulator; D-BFL drives the control
    channel, which is outside the vectorized envelope, so a ``"numpy"``
    request currently falls back to the python loop (counted under
    ``backend.fallbacks``).
    """
    from ..core.dbfl import DBFLPolicy

    return _traced(
        "dbfl",
        instance,
        lambda: simulate(
            instance,
            DBFLPolicy(),
            buffer_capacity=buffer_capacity,
            admission=admission,
            faults=faults,
            backend=backend,
        ),
    )


def online_greedy(
    instance: Instance,
    *,
    policy: str | Policy = "edf",
    buffer_capacity: int | None = None,
    admission: str = DEFAULT_ADMISSION,
    faults: FaultPlan | None = None,
    backend: str | None = None,
) -> StreamResult:
    """A buffered per-link heuristic, streamed through the simulator.

    With ``backend="numpy"`` (explicit or ambient) the named policies run
    on the vectorized simulator loop — bit-identical results, including
    the decision log and drop attribution.
    """
    from .. import baselines

    name = policy if isinstance(policy, str) else type(policy).__name__
    if isinstance(policy, str):
        named = {
            "edf": baselines.EDFPolicy,
            "fcfs": baselines.FCFSPolicy,
            "laxity": baselines.MinLaxityPolicy,
            "nearest": baselines.NearestDestPolicy,
        }
        if policy not in named:
            raise ValueError(
                f"unknown policy {policy!r}; choose one of {GREEDY_POLICIES} "
                "or pass a Policy instance"
            )
        policy = named[policy]()
    elif not isinstance(policy, Policy):
        raise TypeError(f"policy must be a name or Policy instance, got {policy!r}")
    return _traced(
        f"greedy:{name}",
        instance,
        lambda: simulate(
            instance,
            policy,
            buffer_capacity=buffer_capacity,
            admission=admission,
            faults=faults,
            backend=backend,
        ),
    )
