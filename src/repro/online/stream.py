"""The stream model for the online scheduling regime.

Offline solvers see an :class:`~repro.core.instance.Instance` all at once;
an *online* policy sees it as a time-ordered **arrival stream**: message
``m`` is revealed at its release ``r_m`` and every admit / launch / drop
decision taken from that point on is irrevocable.  This module holds the
regime's value types:

* :func:`arrival_stream` — the canonical revelation order (release time
  ascending, message id as tie-break), shared by every online policy so
  two policies on the same instance see byte-identical streams;
* :class:`Decision` — one irrevocable event in a run: a ``"launch"``
  (the message boards a scan line / starts moving) or a ``"drop"``
  (attributed to the *policy* — no feasible slot remained — or to a
  *fault* — the network lost an already-launched message);
* :class:`StreamResult` — everything one online run produced: the
  realized :class:`~repro.core.schedule.Schedule`, the decision log, the
  drop attribution split, and run statistics.

Fault-attributed drops are kept strictly separate from policy drops so
experiments can distinguish "the policy declined/starved this message"
from "the network ate it" (see ``repro.network.faults``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..core.instance import Instance
from ..core.message import Message
from ..core.schedule import Schedule

__all__ = ["Decision", "StreamResult", "arrival_stream"]

# Decision kinds and drop reasons form tiny closed vocabularies; keeping
# them as plain strings keeps Decision JSON-friendly for the exporters.
KINDS = ("launch", "drop")
DROP_REASONS = ("policy", "fault")


@dataclass(frozen=True, slots=True)
class Decision:
    """One irrevocable event of an online run.

    ``alpha`` is the boarded scan line for launches (``None`` for
    buffered policies, whose packets may change lines mid-route);
    ``reason`` is set on drops only: ``"policy"`` (never launched, or
    knowingly abandoned) vs ``"fault"`` (lost to the fault plan after
    entering the network).
    """

    message_id: int
    kind: str
    time: int
    alpha: int | None = None
    reason: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"decision kind must be one of {KINDS}, got {self.kind!r}")
        if self.kind == "drop" and self.reason not in DROP_REASONS:
            raise ValueError(
                f"drop decisions need a reason in {DROP_REASONS}, got {self.reason!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "message_id": self.message_id,
            "kind": self.kind,
            "time": self.time,
        }
        if self.alpha is not None:
            out["alpha"] = self.alpha
        if self.reason is not None:
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Decision":
        """The lossless inverse of :meth:`to_dict` (validators re-run)."""
        try:
            return cls(
                message_id=int(data["message_id"]),
                kind=str(data["kind"]),
                time=int(data["time"]),
                alpha=int(data["alpha"]) if data.get("alpha") is not None else None,
                reason=data.get("reason"),
            )
        except KeyError as exc:
            raise ValueError(f"missing field {exc} in decision data") from exc


@dataclass(frozen=True)
class StreamResult:
    """Everything one online run produced.

    ``dropped`` maps every undelivered message id to its attribution
    (``"policy"`` or ``"fault"``); ``decisions`` is the full event log in
    simulation-time order; ``stats`` carries policy-specific counters
    (replans, admission waits, blocked launches, simulator steps, ...).
    ``topology`` names the shape the run happened on, so serialization
    round-trips losslessly without the caller re-supplying it.
    """

    policy: str
    schedule: Schedule
    delivered_ids: frozenset[int]
    dropped: Mapping[int, str]
    decisions: tuple[Decision, ...]
    steps: int
    stats: dict[str, Any] = field(default_factory=dict)
    topology: str = "line"
    workload: dict[str, Any] | None = None

    @property
    def throughput(self) -> int:
        return len(self.delivered_ids)

    @property
    def policy_dropped_ids(self) -> frozenset[int]:
        return frozenset(i for i, why in self.dropped.items() if why == "policy")

    @property
    def fault_dropped_ids(self) -> frozenset[int]:
        return frozenset(i for i, why in self.dropped.items() if why == "fault")

    #: Version of the :meth:`to_dict` wire schema.  v2 added the optional
    #: ``workload`` provenance block ({trace_id, shape, seed} — stamped by
    #: trace replay, see :mod:`repro.trace`); v1 payloads parse unchanged.
    SCHEMA_VERSION = 2

    def to_dict(self, *, topology: str | None = None) -> dict[str, Any]:
        """The stable JSON form of one online run.

        The schedule document is delegated to the run's topology, exactly
        like :meth:`repro.api.ScheduleResult.to_dict`; passing
        ``topology=`` overrides the result's own field (legacy callers —
        results constructed before the field existed defaulted to line).
        The ``workload`` key appears only on runs carrying trace
        provenance.  :meth:`from_dict` is the lossless inverse.
        """
        from ..api import _jsonable
        from ..topology import get_topology

        if topology is None:
            topology = self.topology
        out = {
            "format": "repro-stream-result",
            "version": self.SCHEMA_VERSION,
            "topology": topology,
            "policy": self.policy,
            "throughput": self.throughput,
            "steps": self.steps,
            "delivered_ids": sorted(self.delivered_ids),
            "dropped": {str(i): why for i, why in sorted(self.dropped.items())},
            "decisions": [d.to_dict() for d in self.decisions],
            "stats": _jsonable(self.stats),
            "schedule": get_topology(topology).schedule_to_dict(self.schedule),
        }
        if self.workload is not None:
            out["workload"] = _jsonable(self.workload)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StreamResult":
        """Rebuild a :class:`StreamResult` from its :meth:`to_dict` form.

        Accepts every schema version up to :data:`SCHEMA_VERSION` — v1
        payloads (no ``workload`` block) parse with ``workload=None``.
        """
        from ..topology import get_topology

        if not isinstance(data, dict):
            raise ValueError("expected a JSON object")
        fmt = data.get("format")
        if fmt != "repro-stream-result":
            raise ValueError(f"expected format 'repro-stream-result', got {fmt!r}")
        version = data.get("version")
        if not isinstance(version, int) or not 1 <= version <= cls.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported version {version!r} "
                f"(supported: 1..{cls.SCHEMA_VERSION})"
            )
        topology = data.get("topology", "line")
        workload = data.get("workload")
        try:
            return cls(
                policy=str(data["policy"]),
                schedule=get_topology(topology).schedule_from_dict(data["schedule"]),
                delivered_ids=frozenset(int(i) for i in data["delivered_ids"]),
                dropped={int(i): str(why) for i, why in data["dropped"].items()},
                decisions=tuple(Decision.from_dict(d) for d in data["decisions"]),
                steps=int(data["steps"]),
                stats=dict(data.get("stats") or {}),
                topology=str(topology),
                workload=dict(workload) if workload is not None else None,
            )
        except KeyError as exc:
            raise ValueError(f"missing field {exc} in stream result data") from exc


def arrival_stream(instance: Instance) -> Iterator[tuple[int, tuple[Message, ...]]]:
    """Yield ``(release_time, messages)`` groups in revelation order.

    Groups are ascending in release time; within a group messages are
    ordered by id.  This is the one canonical stream every online policy
    consumes, so different policies (and repeated runs) observe exactly
    the same revelation sequence.
    """
    by_release: dict[int, list[Message]] = {}
    for m in instance:
        by_release.setdefault(m.release, []).append(m)
    for release in sorted(by_release):
        yield release, tuple(sorted(by_release[release], key=lambda m: m.id))
