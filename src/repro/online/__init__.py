"""Online streaming scheduling — messages revealed at release time.

The offline layers solve an :class:`~repro.core.instance.Instance` with
full knowledge.  This package is the *online* regime: the instance is
consumed as a time-ordered arrival stream (:func:`arrival_stream`), every
admit / launch / drop decision is irrevocable once taken, and policies
are measured by empirical competitive ratio against the offline optima
(computed by the facade, ``repro.api.solve(..., regime="online")``).

Three policies:

* ``"bfl"`` — :func:`online_bfl`: incremental scan-line admission.
  Replans a BFL sweep over the revealed-but-unlaunched messages at every
  arrival, honouring the segments already committed; coincides exactly
  with offline BFL on single-release streams (and hence is ½·OPT_BL
  there, Theorem 3.2).
* ``"dbfl"`` — :func:`online_dbfl`: the paper's distributed rule
  (Section 5), driven through the network simulator.
* ``"greedy"`` — :func:`online_greedy`: buffered per-link heuristics
  (EDF / FCFS / least-laxity / nearest-destination).

All three tolerate an active :class:`~repro.network.faults.FaultPlan`
mid-stream and report fault-attributed drops separately from policy
drops (:class:`StreamResult.fault_dropped_ids` vs
``policy_dropped_ids``).
"""

from __future__ import annotations

from typing import Any

from ..core.instance import Instance
from .bfl_online import online_bfl
from .simulated import GREEDY_POLICIES, online_dbfl, online_greedy
from .stream import Decision, StreamResult, arrival_stream

__all__ = [
    "Decision",
    "StreamResult",
    "ONLINE_POLICIES",
    "GREEDY_POLICIES",
    "arrival_stream",
    "online_bfl",
    "online_dbfl",
    "online_greedy",
    "run_online",
]

ONLINE_POLICIES = ("bfl", "dbfl", "greedy")


def run_online(instance: Instance, policy: str = "bfl", **opts: Any) -> StreamResult:
    """Run one online policy by name; the implementation-layer dispatcher.

    (The facade, ``repro.api.solve(instance, "online", method)``, wraps
    this and adds the competitive-ratio baseline.)
    """
    if policy == "bfl":
        return online_bfl(instance, **opts)
    if policy == "dbfl":
        return online_dbfl(instance, **opts)
    if policy == "greedy":
        return online_greedy(instance, **opts)
    raise ValueError(f"unknown online policy {policy!r}; choose one of {ONLINE_POLICIES}")
