"""Execution-backend dispatch: ``"python"`` (reference) vs ``"numpy"``.

The library keeps two implementations of its hot kernels: the readable,
event-driven pure-python reference (``bfl_fast``, the simulator's step
loop) and vectorized numpy variants (``repro.core.bfl_vec``,
``repro.network.simulator_vec``) that batch the same work into array
operations.  The **golden-reference contract** is that the numpy backend
is bit-identical to the python one — same schedules, trajectory for
trajectory; same ``SimulationResult`` down to drop ordering and fault
counters — so switching backends can never change a result, only how
fast it arrives.

Selection is layered; first match wins:

1. an explicit ``backend=`` argument (``repro.api.solve``,
   :func:`repro.network.simulator.simulate`, ``repro.core.bfl_vec.bfl_kernel``,
   the online entry points, ...);
2. an enclosing :func:`use_backend` context — ``repro.api.solve`` wraps
   every registered solver call in one, and the sweep engine
   (:class:`repro.engine.pool.Engine`) ships its ``backend`` field into
   worker processes the same way;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``"python"``.

Requesting ``"numpy"`` never fails over to an error at dispatch time:
kernels that have no vectorized form for the requested configuration
(non-default tie-breaks, control-channel policies like D-BFL, mesh
routing, custom ``Policy`` subclasses) **fall back automatically** to the
pure-python reference and count the event under the
``backend.fallbacks`` observability counter.  Because the backends are
bit-identical, the fallback is invisible except in wall time.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from . import obs

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "use_backend",
    "current_backend",
    "fall_back",
]

#: The recognised execution backends, reference first.
BACKENDS = ("python", "numpy")
DEFAULT_BACKEND = "python"

_current: ContextVar[str | None] = ContextVar("repro_backend", default=None)


def _validate(backend: str) -> str:
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {BACKENDS} "
            "(or leave unset / set REPRO_BACKEND)"
        )
    return name


def resolve_backend(backend: str | None = None) -> str:
    """Resolve an explicit/contextual/environment backend request.

    ``backend=None`` consults the enclosing :func:`use_backend` context,
    then ``REPRO_BACKEND``, then falls back to :data:`DEFAULT_BACKEND`.
    Unknown names raise ``ValueError`` — misspelling a backend should
    never silently run the slow path.
    """
    if backend is not None:
        return _validate(backend)
    contextual = _current.get()
    if contextual is not None:
        return contextual
    env = os.environ.get("REPRO_BACKEND", "").strip()
    if env:
        return _validate(env)
    return DEFAULT_BACKEND


def current_backend() -> str | None:
    """The backend pinned by the innermost :func:`use_backend`, if any."""
    return _current.get()


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Pin the resolved backend for the dynamic extent of the block.

    ``None`` re-resolves from the environment (useful to *snapshot* the
    ambient choice before handing work to code that must not re-read a
    mutated environment).
    """
    resolved = resolve_backend(backend)
    token = _current.set(resolved)
    try:
        yield resolved
    finally:
        _current.reset(token)


def fall_back(kernel: str) -> str:
    """Record that ``kernel`` had no vectorized form and report ``"python"``.

    Called by numpy-backend entry points when the requested configuration
    is outside their vectorized envelope; the event is counted under
    ``backend.fallbacks`` (and per-kernel under
    ``backend.fallbacks.<kernel>``) so benchmarks can tell a fast run
    from a silently-degraded one.
    """
    tr = obs.tracer()
    if tr.enabled:
        tr.count("backend.fallbacks")
        tr.count(f"backend.fallbacks.{kernel}")
    return "python"
