"""NP-hardness machinery (paper Theorems 3.1 & 5.1, Appendix A, Fig. 3).

The paper reduces 3-SAT to time-constrained message scheduling.  This
package contains every piece needed to *run* that reduction:

* :mod:`repro.hardness.cnf` — CNF formulas and seeded random 3-SAT;
* :mod:`repro.hardness.dpll` — a complete DPLL satisfiability solver
  (unit propagation + pure-literal elimination), the ground truth;
* :mod:`repro.hardness.reduction` — the Appendix-A construction
  ``Φ -> I(Φ)`` with ``OPT_B(I(Φ)) = OPT_BL(I(Φ)) = n - v  ⟺  Φ ∈ SAT``,
  plus a witness extractor mapping schedules back to assignments.
"""

from .cnf import CNF, Clause, random_3sat
from .dpll import dpll_sat, dpll_solve
from .reduction import ReductionResult, reduce_3sat, satisfying_assignment_from_schedule

__all__ = [
    "CNF",
    "Clause",
    "random_3sat",
    "dpll_sat",
    "dpll_solve",
    "reduce_3sat",
    "ReductionResult",
    "satisfying_assignment_from_schedule",
]
