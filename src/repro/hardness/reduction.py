"""The Appendix-A reduction: 3-SAT -> time-constrained message scheduling.

Construction (following the paper's prose; coordinates reconstructed — the
published figure under-determines them — and validated empirically against
DPLL + the exact solvers):

**Geometry.**  Scan lines are indexed here by a *level* ``ν``; larger ``ν``
is earlier in time.  Level ``ν`` is realised as ao-parameter
``α = ν - V`` with the global offset ``V = 6c + 6`` chosen so every
departure time is non-negative.  Node 0 is a staging node; variable ``x``
(1-based) owns four nodes starting at ``base(x) = 1 + 4(x-1)``.

**Variable gadget** (level 0, the *latest* line, for every variable): two
slack-0 span-2 messages ``m_{+x} = base -> base+2`` and
``m_{-x} = base+1 -> base+3`` overlapping on the middle edge, so at most
one can be routed.  Dropping ``m_{+x}`` encodes ``x = true``.  The
non-shared edges are the literals' *critical edges*:
``e(+x) = (base, base+1)`` and ``e(-x) = (base+2, base+3)``.

**Clause block** ``j`` (0-based) owns the six levels ``6j+1 .. 6j+6``
(``ℓ1 = 6j+6`` earliest ... ``ℓ6 = 6j+1`` latest).  With the clause's
literals ordered ``A, B, C`` by critical-edge position:

=====  ==========================  ===============  =====
msg    span                        levels            slack
=====  ==========================  ===============  =====
p_A    ``0 -> right(e_A)``         ``6j+1 .. 6j+6``   5
p_B    ``0 -> right(e_B)``         ``6j+2 .. 6j+5``   3
p_C    ``0 -> right(e_C)``         ``6j+3 .. 6j+4``   1
p_X    ``0 -> left(e_A)``          ``6j+4 .. 6j+6``   2
p_1    ``e_B`` (span 1)            ``6j+3 .. 6j+4``   1
p_2    ``e_A`` (span 1)            ``6j+2 .. 6j+5``   3
p_3    ``e_A`` (span 1)            ``6j+3 .. 6j+4``   1
=====  ==========================  ===============  =====

**Chains.**  For a literal ``L`` occurring in clauses ``j_1 < ... < j_r``
(position-dependent signal level ``λ_i`` = ``6j_i + 1/2/3`` for A/B/C and
window-top ``w_i`` = ``6j_i + 6/5/4``), build one chain *segment* per range
``[0, λ_1], [w_1, λ_2], ..., [w_{r-1}, λ_r]`` on the critical edge of
``L``: a range of ``S`` levels crossed by ``T`` clause messages gets
``S - T - 1`` identical span-1 messages whose window is exactly the range.
The ``-1`` leaves room for exactly one of {the variable message /
the forced clause message} at the range's boundary; a full chain propagates
"literal false" pressure upward, clause by clause, exactly as the paper's
chain-extension argument describes.

**Outcome.**  With ``N`` total messages and ``v`` variables,
``OPT_BL(I(Φ)) = OPT_B(I(Φ)) = N - v`` iff ``Φ`` is satisfiable (at most
one message per variable pair can ever be routed, so ``N - v`` is an
unconditional upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.instance import Instance
from ..core.message import Message
from ..core.schedule import Schedule
from .cnf import CNF

__all__ = ["ReductionResult", "reduce_3sat", "satisfying_assignment_from_schedule"]


@dataclass(frozen=True)
class _Edge:
    left: int

    @property
    def right(self) -> int:
        return self.left + 1

    def covered_by(self, source: int, dest: int) -> bool:
        return source <= self.left and dest >= self.right


@dataclass(frozen=True)
class ReductionResult:
    """The reduced instance plus the bookkeeping the experiments need."""

    instance: Instance
    formula: CNF
    target: int  # N - v: the throughput achieved iff the formula is SAT
    variable_message_ids: dict[int, tuple[int, int]]  # var -> (id of m_{+x}, id of m_{-x})
    kinds: dict[int, str] = field(repr=False)  # message id -> gadget role

    @property
    def num_messages(self) -> int:
        return len(self.instance)


# Position-dependent level offsets within a clause block: signal level λ
# (where the chain's bottom sits) and window top w (the message's earliest
# level), for the A/B/C literal slots.
_LAMBDA_OFFSET = {"A": 1, "B": 2, "C": 3}
_TOP_OFFSET = {"A": 6, "B": 5, "C": 4}


def reduce_3sat(formula: CNF) -> ReductionResult:
    """Build the scheduling instance ``I(Φ)`` for a strict 3-CNF formula."""
    v = formula.num_vars
    c = len(formula.clauses)
    if v < 1:
        raise ValueError("formula has no variables")
    offset = 6 * c + 6  # level -> ao-parameter shift keeping time >= 0
    n = 4 * v + 2

    def base(var: int) -> int:
        return 1 + 4 * (var - 1)

    def critical_edge(lit: int) -> _Edge:
        b = base(abs(lit))
        return _Edge(b) if lit > 0 else _Edge(b + 2)

    msgs: list[Message] = []
    kinds: dict[int, str] = {}

    def add(source: int, dest: int, lo: int, hi: int, kind: str) -> int:
        """Message whose bufferless level window is exactly [lo, hi]."""
        mid = len(msgs)
        release = source - (hi - offset)
        deadline = dest - (lo - offset)
        msgs.append(Message(mid, source, dest, release, deadline))
        kinds[mid] = kind
        assert msgs[-1].slack == hi - lo
        return mid

    # ---------------- variable gadgets (level 0) ----------------------- #
    variable_ids: dict[int, tuple[int, int]] = {}
    for x in range(1, v + 1):
        b = base(x)
        pos = add(b, b + 2, 0, 0, f"var+{x}")
        neg = add(b + 1, b + 3, 0, 0, f"var-{x}")
        variable_ids[x] = (pos, neg)

    # ---------------- clause blocks ------------------------------------ #
    # clause j -> list of (literal, position) ordered by critical edge
    positions: dict[int, list[tuple[int, str]]] = {}
    for j, clause in enumerate(formula.clauses):
        ordered = sorted(clause.literals, key=lambda lit: critical_edge(lit).left)
        positions[j] = list(zip(ordered, ("A", "B", "C")))
        lit_a, lit_b, _lit_c = ordered
        e_a, e_b, e_c = (critical_edge(lit) for lit in ordered)
        lv = 6 * j
        add(0, e_a.right, lv + 1, lv + 6, f"pA@{j}")
        add(0, e_b.right, lv + 2, lv + 5, f"pB@{j}")
        add(0, e_c.right, lv + 3, lv + 4, f"pC@{j}")
        add(0, e_a.left, lv + 4, lv + 6, f"pX@{j}")
        add(e_b.left, e_b.right, lv + 3, lv + 4, f"p1@{j}")
        add(e_a.left, e_a.right, lv + 2, lv + 5, f"p2@{j}")
        add(e_a.left, e_a.right, lv + 3, lv + 4, f"p3@{j}")

    # snapshot of clause messages for through-traffic counting
    clause_msgs = [(m.source, m.dest, m) for m in msgs if kinds[m.id].startswith("p")]

    def through_count(edge: _Edge, lo: int, hi: int) -> int:
        """Clause messages crossing ``edge`` whose level window fits in
        ``[lo, hi]`` (their windows never straddle a range boundary — the
        assertion below guards that invariant)."""
        t = 0
        for source, dest, m in clause_msgs:
            if not edge.covered_by(source, dest):
                continue
            m_lo = offset + m.dest - m.deadline  # level of latest line
            m_hi = offset + m.source - m.release  # level of earliest line
            if lo <= m_lo and m_hi <= hi:
                t += 1
            else:
                assert m_hi < lo or m_lo > hi or m_lo == hi or m_hi == lo, (
                    f"clause message {m.id} straddles chain range [{lo}, {hi}]"
                )
        return t

    # ---------------- chains -------------------------------------------- #
    occurrences = formula.literal_occurrences()
    for lit in sorted(occurrences, key=lambda l: (abs(l), l < 0)):
        edge = critical_edge(lit)
        events: list[tuple[int, int]] = []  # (λ_i, w_i) per containing clause
        for j in sorted(occurrences[lit]):
            pos = next(p for l, p in positions[j] if l == lit)
            events.append((6 * j + _LAMBDA_OFFSET[pos], 6 * j + _TOP_OFFSET[pos]))
        ranges = [(0, events[0][0])]
        for (_lam_prev, w_prev), (lam, _w) in zip(events, events[1:]):
            ranges.append((w_prev, lam))
        for lo, hi in ranges:
            count = (hi - lo + 1) - through_count(edge, lo, hi) - 1
            assert count >= 0, f"negative chain size for literal {lit} range [{lo}, {hi}]"
            for _ in range(count):
                add(edge.left, edge.right, lo, hi, f"chain{lit}@{lo}-{hi}")

    instance = Instance(n, tuple(msgs))
    return ReductionResult(
        instance=instance,
        formula=formula,
        target=len(msgs) - v,
        variable_message_ids=variable_ids,
        kinds=kinds,
    )


def satisfying_assignment_from_schedule(
    result: ReductionResult, schedule: Schedule
) -> dict[int, bool] | None:
    """Extract the truth assignment a target-throughput schedule encodes.

    A variable is true iff its *positive* message was dropped (paper: "the
    message corresponding to the literal that is true is the message that
    is dropped").  Returns ``None`` if the schedule misses the target or
    drops anything other than one message per variable pair — in which case
    it encodes no assignment.
    """
    if schedule.throughput != result.target:
        return None
    delivered = schedule.delivered_ids
    assignment: dict[int, bool] = {}
    expected_drops = set()
    for x, (pos, neg) in result.variable_message_ids.items():
        pos_in = pos in delivered
        neg_in = neg in delivered
        if pos_in == neg_in:
            return None  # both or neither routed: not a gadget-respecting optimum
        assignment[x] = not pos_in
        expected_drops.add(neg if pos_in else pos)
    all_ids = set(result.instance.ids)
    if all_ids - delivered != expected_drops:
        return None
    return assignment
