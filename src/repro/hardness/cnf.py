"""CNF formulas over integer variables, and random 3-SAT generation.

Literals use the DIMACS convention: variable ``x`` (1-based) appears as
``+x`` (positive) or ``-x`` (negated).  The reduction requires each clause
to mention three *distinct* variables (strict 3-SAT), which
:class:`Clause` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Clause", "CNF", "random_3sat"]


@dataclass(frozen=True, slots=True)
class Clause:
    """A disjunction of exactly three literals over distinct variables."""

    literals: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.literals) != 3:
            raise ValueError(f"need exactly 3 literals, got {self.literals}")
        if any(lit == 0 for lit in self.literals):
            raise ValueError("literal 0 is not allowed (DIMACS convention)")
        vars_ = {abs(lit) for lit in self.literals}
        if len(vars_) != 3:
            raise ValueError(
                f"clause {self.literals} repeats a variable; the reduction "
                "requires three distinct variables per clause"
            )

    @property
    def variables(self) -> frozenset[int]:
        return frozenset(abs(lit) for lit in self.literals)

    def satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """Whether the (total) assignment satisfies this clause."""
        return any(
            assignment[abs(lit)] == (lit > 0) for lit in self.literals
        )


@dataclass(frozen=True)
class CNF:
    """A 3-CNF formula."""

    num_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        for cl in self.clauses:
            for lit in cl.literals:
                if abs(lit) > self.num_vars:
                    raise ValueError(
                        f"literal {lit} exceeds num_vars={self.num_vars}"
                    )

    @classmethod
    def of(cls, num_vars: int, rows: Sequence[Sequence[int]]) -> "CNF":
        """Build from literal triples, e.g. ``CNF.of(3, [(1, -2, 3)])``."""
        return cls(num_vars, tuple(Clause(tuple(r)) for r in rows))

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        return all(cl.satisfied_by(assignment) for cl in self.clauses)

    def literal_occurrences(self) -> dict[int, list[int]]:
        """Map each literal to the (sorted) clause indices containing it."""
        occ: dict[int, list[int]] = {}
        for j, cl in enumerate(self.clauses):
            for lit in cl.literals:
                occ.setdefault(lit, []).append(j)
        return occ


def random_3sat(
    num_vars: int,
    num_clauses: int,
    rng: np.random.Generator,
) -> CNF:
    """Uniform random strict 3-SAT: each clause picks 3 distinct variables
    and independent random polarities.

    ``num_vars >= 3`` is required.  The classic satisfiability phase
    transition sits near ``num_clauses / num_vars ≈ 4.27``; the hardness
    experiments sample both sides of it.
    """
    if num_vars < 3:
        raise ValueError("need at least 3 variables for strict 3-SAT")
    clauses = []
    for _ in range(num_clauses):
        vars_ = rng.choice(np.arange(1, num_vars + 1), size=3, replace=False)
        signs = rng.integers(0, 2, size=3) * 2 - 1
        clauses.append(Clause(tuple(int(v * s) for v, s in zip(vars_, signs))))
    return CNF(num_vars, tuple(clauses))
