"""A complete DPLL satisfiability solver.

Classic Davis–Putnam–Logemann–Loveland search with unit propagation and
pure-literal elimination.  It is the independent ground truth the reduction
experiments compare the scheduling optima against — deliberately simple and
easy to audit rather than fast (the reduction instances stay tiny anyway).
"""

from __future__ import annotations

from .cnf import CNF

__all__ = ["dpll_solve", "dpll_sat"]


def dpll_solve(formula: CNF) -> dict[int, bool] | None:
    """Return a satisfying (total) assignment, or ``None`` if unsatisfiable."""
    clauses = [list(cl.literals) for cl in formula.clauses]
    assignment = _search(clauses, {})
    if assignment is None:
        return None
    # total-ise: unconstrained variables default to False
    return {v: assignment.get(v, False) for v in range(1, formula.num_vars + 1)}


def dpll_sat(formula: CNF) -> bool:
    """Satisfiability decision."""
    return dpll_solve(formula) is not None


# --------------------------------------------------------------------- #


def _simplify(clauses: list[list[int]], lit: int) -> list[list[int]] | None:
    """Assign ``lit`` true; drop satisfied clauses, shrink the rest.

    Returns ``None`` on an empty (falsified) clause.
    """
    out: list[list[int]] = []
    for cl in clauses:
        if lit in cl:
            continue
        reduced = [x for x in cl if x != -lit]
        if not reduced:
            return None
        out.append(reduced)
    return out


def _search(clauses: list[list[int]], assignment: dict[int, bool]) -> dict[int, bool] | None:
    # unit propagation
    while True:
        unit = next((cl[0] for cl in clauses if len(cl) == 1), None)
        if unit is None:
            break
        clauses = _simplify(clauses, unit)
        if clauses is None:
            return None
        assignment = {**assignment, abs(unit): unit > 0}

    # pure-literal elimination
    while True:
        lits = {x for cl in clauses for x in cl}
        pure = next((x for x in lits if -x not in lits), None)
        if pure is None:
            break
        simplified = _simplify(clauses, pure)
        assert simplified is not None  # assigning a pure literal never falsifies
        clauses = simplified
        assignment = {**assignment, abs(pure): pure > 0}

    if not clauses:
        return assignment

    # branch on the most frequent variable (helps a little, stays simple)
    counts: dict[int, int] = {}
    for cl in clauses:
        for x in cl:
            counts[abs(x)] = counts.get(abs(x), 0) + 1
    var = max(counts, key=lambda v: (counts[v], -v))
    for lit in (var, -var):
        reduced = _simplify(clauses, lit)
        if reduced is not None:
            found = _search(reduced, {**assignment, var: lit > 0})
            if found is not None:
                return found
    return None
