"""DIMACS CNF interchange: read and write standard ``.cnf`` files.

The DIMACS format is the lingua franca of SAT tooling, so the reduction
pipeline can consume instances produced by any generator and hand our
formulas to any external solver:

```
c a comment
p cnf 3 2
1 -2 3 0
-1 2 -3 0
```

Only strict 3-SAT clauses (three distinct variables) survive
:func:`parse_dimacs` since that is what the reduction requires; anything
else raises with a line number.
"""

from __future__ import annotations

from pathlib import Path

from .cnf import CNF, Clause

__all__ = ["parse_dimacs", "to_dimacs", "load_dimacs", "save_dimacs"]


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF` (strict 3-SAT only)."""
    num_vars: int | None = None
    declared_clauses: int | None = None
    clauses: list[Clause] = []
    pending: list[int] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"line {lineno}: malformed problem line {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if num_vars is None:
            raise ValueError(f"line {lineno}: clause before 'p cnf' header")
        for token in line.split():
            lit = int(token)
            if lit == 0:
                if len(pending) != 3:
                    raise ValueError(
                        f"line {lineno}: clause {pending} has {len(pending)} "
                        "literals; the reduction requires strict 3-SAT"
                    )
                clauses.append(Clause(tuple(pending)))
                pending = []
            else:
                pending.append(lit)
    if pending:
        raise ValueError(f"unterminated clause {pending} (missing trailing 0)")
    if num_vars is None:
        raise ValueError("missing 'p cnf' header")
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ValueError(
            f"header declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return CNF(num_vars, tuple(clauses))


def to_dimacs(formula: CNF, *, comment: str | None = None) -> str:
    """Serialise a formula as DIMACS CNF text."""
    lines = []
    if comment:
        lines.extend(f"c {c}" for c in comment.splitlines())
    lines.append(f"p cnf {formula.num_vars} {len(formula.clauses)}")
    for clause in formula.clauses:
        lines.append(" ".join(str(l) for l in clause.literals) + " 0")
    return "\n".join(lines) + "\n"


def load_dimacs(path: str | Path) -> CNF:
    return parse_dimacs(Path(path).read_text())


def save_dimacs(formula: CNF, path: str | Path, *, comment: str | None = None) -> None:
    Path(path).write_text(to_dimacs(formula, comment=comment))
