"""Bounded per-node buffers: capacity model + admission/evict policies.

The paper's buffered regime assumes unlimited per-node buffers ("making
no attempt to limit the number of buffers").  The later literature —
Even–Medina–Rosén, *A Constant Approximation Algorithm for Scheduling
Packets on Line Networks* — shows constant-factor guarantees survive
bounded buffers, so the library models capacity as a first-class
instance property (``Instance.buffer_capacity``; ``None`` keeps the
paper's unbounded setting) rather than an ad-hoc simulator knob.

This module is the one home for the capacity vocabulary:

* :data:`ADMISSION_POLICIES` — what happens when a packet reaches a full
  buffer:

  - ``"drop-new"`` (default, the historical behaviour): the arriving
    packet is dropped;
  - ``"drop-farthest-deadline"``: the packet with the farthest deadline
    among the buffered transit packets *and* the arrival is dropped —
    the arrival may displace a buffered packet that is less urgent;
  - ``"evict-lowest-priority"``: same contest, but judged by the
    forwarding policy's own priority order
    (:meth:`repro.network.policy.Policy.eviction_key`), so the buffer
    keeps exactly the packets the policy would forward first.

* :func:`admission_victim` — the shared decision function both simulator
  backends call, so the pure-python loop and the vectorized loop cannot
  drift apart semantically.

* :class:`BoundedBuffer` — a standalone capacity-limited FIFO queue with
  the same admission policies, for solvers and tests that want the data
  structure without a simulator run.

Capacity semantics (shared with the simulators): only *transit* packets
contend for buffer space.  A node can always hold its own outgoing
traffic — source buffering is unbounded — but those source packets do
count toward the occupancy an arriving transit packet sees, and they are
never evicted on its behalf.  Every capacity drop is attributed as
``drop_reason="buffer_full"`` in ``SimulationResult.drop_events``,
joining the existing ``"deadline"``/``"fault"`` attribution.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = [
    "ADMISSION_POLICIES",
    "DEFAULT_ADMISSION",
    "check_admission",
    "check_capacity",
    "admission_victim",
    "farthest_deadline_key",
    "BoundedBuffer",
]

#: The admission/evict policies a bounded buffer understands.
ADMISSION_POLICIES = ("drop-new", "drop-farthest-deadline", "evict-lowest-priority")

#: What the model does unless told otherwise (the historical behaviour).
DEFAULT_ADMISSION = "drop-new"


def check_admission(admission: str) -> str:
    """Validate an admission-policy name (returns it for chaining)."""
    if admission not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {admission!r}; "
            f"choose one of {ADMISSION_POLICIES}"
        )
    return admission


def check_capacity(capacity: int | None) -> int | None:
    """Validate a buffer capacity (non-negative int, or ``None`` = unbounded)."""
    if capacity is None:
        return None
    if isinstance(capacity, bool) or not isinstance(capacity, int):
        raise ValueError(
            f"buffer_capacity must be a non-negative int or None, got {capacity!r}"
        )
    if capacity < 0:
        raise ValueError(f"buffer_capacity must be non-negative, got {capacity}")
    return capacity


def farthest_deadline_key(packet: Any) -> tuple[int, int]:
    """The ``"drop-farthest-deadline"`` contest key (``max`` loses its slot)."""
    return (packet.deadline, packet.id)


def admission_victim(
    buffered: Any,
    incoming: Any,
    admission: str,
    priority_key: Callable[[Any], Any] | None = None,
) -> Any:
    """Who is dropped when ``incoming`` reaches a full buffer.

    ``buffered`` is the node's current buffer contents (packets exposing
    ``crossings``, ``deadline``, ``id``); the returned packet is either
    ``incoming`` (rejected) or one buffered *transit* packet (evicted to
    make room).  Packets still sitting at their own source
    (``not p.crossings``) are never evicted — source buffering is
    unbounded in the model, so displacing queued source traffic to admit
    transit would change the regime, not just the policy.

    ``priority_key`` is required for ``"evict-lowest-priority"``: the key
    the forwarding policy *minimises* when selecting
    (:meth:`repro.network.policy.Policy.eviction_key`), so the *maximum*
    is the packet the policy values least.
    """
    if admission == "drop-new":
        return incoming
    candidates = [p for p in buffered if p.crossings]
    candidates.append(incoming)
    if admission == "drop-farthest-deadline":
        return max(candidates, key=farthest_deadline_key)
    if admission == "evict-lowest-priority":
        if priority_key is None:
            raise ValueError(
                "evict-lowest-priority needs the forwarding policy's "
                "priority key (Policy.eviction_key)"
            )
        return max(candidates, key=priority_key)
    raise ValueError(
        f"unknown admission policy {admission!r}; choose one of {ADMISSION_POLICIES}"
    )


class BoundedBuffer:
    """A capacity-limited FIFO queue with pluggable admission.

    The standalone counterpart of the simulator's per-node buffers —
    what a solver or a test reaches for when it wants the capacity
    *data structure* without a network run.  Items are extracted in FIFO
    order; :meth:`offer` applies the admission contest when full and
    returns whoever lost (``None`` when the item simply fits).

    With ``key=None`` the admission contest treats every queued item as
    evictable transit judged by ``(deadline, id)``-style keys via
    ``admission_victim`` — pass ``key=`` to supply the priority order for
    ``"evict-lowest-priority"``.  Items only need ``deadline``/``id``
    attributes for ``"drop-farthest-deadline"`` (none at all for
    ``"drop-new"``).
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        admission: str = DEFAULT_ADMISSION,
        key: Callable[[Any], Any] | None = None,
    ) -> None:
        self.capacity = check_capacity(capacity)
        self.admission = check_admission(admission)
        self.key = key
        self._items: list[Any] = []
        self.rejected = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def offer(self, item: Any) -> Any:
        """Try to enqueue ``item``; return the loser of the contest.

        ``None`` means the item was admitted without displacing anyone.
        Returning ``item`` itself means it was rejected; returning a
        previously queued item means it was evicted (and ``item`` took
        its place at the FIFO tail).
        """
        if not self.is_full():
            self._items.append(item)
            return None
        if self.admission == "drop-new":
            self.rejected += 1
            return item
        if self.admission == "drop-farthest-deadline":
            loser = max([*self._items, item], key=farthest_deadline_key)
        else:  # evict-lowest-priority
            key = self.key if self.key is not None else farthest_deadline_key
            loser = max([*self._items, item], key=key)
        if loser is item:
            self.rejected += 1
            return item
        self._items.remove(loser)
        self._items.append(item)
        self.evicted += 1
        return loser

    # Snippet-style aliases: ``append``/``extract`` as in the classical
    # FIFO buffer interface.

    def append(self, item: Any) -> bool:
        """Enqueue if there is room; ``False`` when the buffer is full
        (no admission contest — the plain FIFO interface)."""
        if self.is_full():
            return False
        self._items.append(item)
        return True

    def extract(self) -> Any:
        """Pop the FIFO front (raises ``IndexError`` when empty)."""
        if not self._items:
            raise IndexError("extract from an empty BoundedBuffer")
        return self._items.pop(0)
