"""E13 — delivery-ratio vs slack-budget curve."""

from conftest import single_round

from repro.experiments import e13_slack_sweep


def test_e13_slack_sweep(benchmark, show):
    table = single_round(benchmark, lambda: e13_slack_sweep.run(trials=5))
    show("E13: delivery ratio vs slack budget", table)
    curve = [r["bfl"] for r in table.rows]
    assert curve[-1] >= curve[0]  # looser deadlines help
    for row in table.rows:
        assert row["dbfl"] == row["bfl"]  # Theorem 5.2, again
