"""E11 — the ring extension keeps the factor-2 guarantee."""

from conftest import single_round

from repro.experiments import e11_ring


def test_e11_ring(benchmark, show):
    table = single_round(benchmark, lambda: e11_ring.run(trials=12))
    show("E11: ring BFL / exact ratio (bound: >= 0.5, with wrapping traffic)", table)
    for row in table.rows:
        assert row["bound_ok"]
        assert row["min_ratio"] >= 0.5
        assert row["wrapping_frac"] > 0  # the workloads genuinely wrap
