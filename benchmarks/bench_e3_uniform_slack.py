"""E3 — Theorem 4.1: OPT_B <= 3 OPT_BL under uniform slack."""

from conftest import single_round

from repro.experiments import e3_uniform_slack


def test_e3_uniform_slack(benchmark, show):
    table = single_round(benchmark, lambda: e3_uniform_slack.run(trials=8))
    show("E3: uniform slack (paper bound: ratio <= 3, credit <= 2)", table)
    for row in table.rows:
        assert row["bound_ok"]
        assert row["max_ratio"] <= 3.0 + 1e-9
        assert row["max_credit"] <= 2.0 + 1e-9
