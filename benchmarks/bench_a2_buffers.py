"""A2 — ablation: finite buffer capacities."""

from conftest import single_round

from repro.experiments import a2_buffers


def test_a2_buffers(benchmark, show):
    table = single_round(benchmark, lambda: a2_buffers.run(trials=6))
    show("A2: throughput vs per-node buffer capacity (inf == paper's model)", table)
    by_family = {}
    for row in table.rows:
        by_family.setdefault(row["family"], []).append(row)
    for rows in by_family.values():
        # throughput is monotone in capacity, and overflow drops vanish at inf
        caps = [r for r in rows]
        assert caps[-1]["capacity"] == "inf"
        assert caps[-1]["overflow_drops"] == 0
        dbfl_vals = [r["dbfl"] for r in caps]
        assert dbfl_vals == sorted(dbfl_vals)
