"""E17 — bounded buffers: ``method="ca"`` vs exact OPT_B."""

from conftest import single_round

from repro.experiments import e17_buffers


def test_e17_buffers(benchmark, show):
    table = single_round(benchmark, lambda: e17_buffers.run(trials=4))
    show('E17: method="ca" throughput ratio vs exact OPT_B', table)
    for row in table.rows:
        # the reservation pass never schedules past the exact optimum,
        # and the ratio tightens as capacity grows
        assert 0.0 <= row["min_ratio"] <= row["mean_ratio"] <= 1.0
    by_n = {}
    for row in table.rows:
        by_n.setdefault(row["n"], []).append(row)
    for rows in by_n.values():
        # greedy admission is not provably monotone in capacity, so only
        # the endpoints are compared: unbounded never trails bufferless
        assert rows[0]["capacity"] == 0 and rows[-1]["capacity"] == "inf"
        assert rows[-1]["mean_ratio"] >= rows[0]["mean_ratio"]
