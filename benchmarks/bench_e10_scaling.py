"""E10 — BFL runtime scaling and simulator throughput."""

from conftest import single_round

from repro.experiments import e10_scaling


def test_e10_scaling(benchmark, show):
    table = single_round(benchmark, lambda: e10_scaling.run(repeats=2))
    show("E10: BFL runtime vs |I| (polynomial, slack-independent)", table)
    rows = table.rows
    assert all(row["bfl_ms"] > 0 for row in rows)
    # growth sanity: 30x more messages should not cost more than ~quadratic
    small, large = rows[0], rows[-1]
    factor = large["messages"] / small["messages"]
    assert large["bfl_ms"] / small["bfl_ms"] <= factor**2 * 10
