"""E14 — dimension-order mesh routing over line schedulers."""

from conftest import single_round

from repro.experiments import e14_mesh


def test_e14_mesh(benchmark, show):
    table = single_round(benchmark, lambda: e14_mesh.run(trials=4))
    show("E14: mesh XY routing (delivery fraction; conversion cost)", table)
    by_key = {(r["family"], r["conversion"]): r for r in table.rows}
    for family in ("random", "transpose", "hotspot"):
        free = by_key[(family, 0)]
        costly = by_key[(family, 2)]
        # a positive conversion delay can only reduce delivered fraction
        assert costly["bfl"] <= free["bfl"] + 1e-9
        # everything is a fraction
        for col in ("bfl", "edf", "first_fit"):
            assert 0.0 <= free[col] <= 1.0
