"""E5 — Theorem 4.3: OPT_B <= 2 OPT_BL for static instances."""

from conftest import single_round

from repro.experiments import e5_static


def test_e5_static(benchmark, show):
    table = single_round(benchmark, lambda: e5_static.run(trials=10))
    show("E5: static release (paper bound: ratio <= 2)", table)
    for row in table.rows:
        assert row["bound_ok"]
        assert row["max_ratio"] <= 2.0 + 1e-9
