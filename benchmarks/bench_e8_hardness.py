"""E8 — Theorems 3.1/5.1 / Figure 3: the 3-SAT reduction, end to end."""

from conftest import single_round

from repro.experiments import e8_hardness


def test_e8_hardness(benchmark, show):
    table = single_round(benchmark, lambda: e8_hardness.run(trials=5))
    show("E8: OPT(I(Φ)) = N - v iff SAT (DPLL as ground truth)", table)
    for row in table.rows:
        t = row["trials"]
        assert row["agree"] == f"{t}/{t}"
