"""E1 — Figure 1 / Section 2 table regeneration."""

from conftest import single_round

from repro.experiments import e1_figure1


def test_e1_figure1(benchmark, show):
    table = single_round(benchmark, e1_figure1.run)
    show("E1: Figure 1 / §2 table (paper: all six messages deliverable)", table)
    # the example is schedulable in full, bufferlessly
    summary = {r["metric"]: r["value"] for r in table.summary.rows}
    assert summary["BFL throughput"] == 6
    assert summary["D-BFL throughput"] == 6
    assert summary["exact OPT_BL"] == 6
    assert summary["exact OPT_B"] == 6


def test_e1_render(benchmark):
    art = single_round(benchmark, e1_figure1.render)
    print()
    print(art)
    assert "22-node line" in art
