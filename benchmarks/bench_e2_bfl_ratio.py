"""E2 — Theorem 3.2: BFL is a 2-approximation of OPT_BL."""

from conftest import single_round

from repro.experiments import e2_bfl_ratio


def test_e2_bfl_ratio(benchmark, show):
    table = single_round(benchmark, lambda: e2_bfl_ratio.run(trials=25))
    show("E2: BFL / OPT_BL ratio (paper bound: >= 0.5)", table)
    for row in table.rows:
        assert row["bound_ok"]
        assert row["min_ratio"] >= 0.5
