"""Engine benchmark — kernel speedup and sweep throughput (the perf baseline).

Runs the same measurement as ``repro bench`` (reduced sizes so the suite
stays quick) and asserts the two headline claims: the scan-line kernel
beats the readable reference, and the engine's cached path beats the
seed-era serial sweep.
"""

from conftest import single_round

from repro.engine.bench import bench_kernel, bench_sweep


def test_kernel_speedup(benchmark):
    result = single_round(
        benchmark, lambda: bench_kernel(sizes=((32, 200), (64, 1000)), repeats=2)
    )
    for case in result["cases"]:
        print(
            f"kernel n={case['n']} k={case['messages']}: "
            f"{case['bfl_seconds'] * 1e3:.2f} ms -> "
            f"{case['bfl_fast_seconds'] * 1e3:.2f} ms ({case['speedup']:.1f}x)"
        )
    # the big case must show a clear win; tiny cases may sit near parity
    assert result["cases"][-1]["speedup"] > 1.5


def test_sweep_engine_throughput(benchmark):
    result = single_round(
        benchmark,
        lambda: bench_sweep(trials=4, jobs=2, sizes=((8, 6), (12, 10))),
    )
    print(
        f"sweep {result['cells']} cells: serial {result['serial_seconds']:.2f}s, "
        f"cold {result['engine_cold_seconds']:.2f}s, "
        f"warm {result['engine_warm_seconds']:.2f}s "
        f"({result['speedup_warm']:.2f}x, {result['engine_warm_cache']['hits']} hits)"
    )
    # warm cache must replay the sweep strictly faster than the seed path
    assert result["engine_warm_cache"]["hits"] == 2 * result["cells"]
    assert result["speedup_warm"] > 1.0
