"""E4 — Theorem 4.2: OPT_B <= 2 OPT_BL under uniform span."""

from conftest import single_round

from repro.experiments import e4_uniform_span


def test_e4_uniform_span(benchmark, show):
    table = single_round(benchmark, lambda: e4_uniform_span.run(trials=8))
    show("E4: uniform span (paper bound: ratio <= 2, conversion keeps >= 1/2)", table)
    for row in table.rows:
        assert row["bound_ok"]
        assert row["min_converted_frac"] >= 0.5 - 1e-9
        assert row["conversion_drops"] == 0
