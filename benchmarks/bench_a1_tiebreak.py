"""A1 — ablation: BFL tie-breaking rules."""

from conftest import single_round

from repro.experiments import a1_tiebreak


def test_a1_tiebreak(benchmark, show):
    table = single_round(benchmark, lambda: a1_tiebreak.run(trials=10))
    show("A1: per-line selection rule ablation", table)
    by_rule = {}
    for row in table.rows:
        by_rule.setdefault(row["rule"], []).append(row["min_ratio"])
    # the paper's rule must keep its guarantee on every family
    assert all(r >= 0.5 for r in by_rule["nearest_dest"])
