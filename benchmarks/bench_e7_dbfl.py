"""E7 — Theorem 5.2: D-BFL == BFL (delivered sets and delivery lines)."""

from conftest import single_round

from repro.experiments import e7_dbfl


def test_e7_dbfl(benchmark, show):
    table = single_round(benchmark, lambda: e7_dbfl.run(trials=15))
    show("E7: D-BFL vs BFL (paper: identical output)", table)
    for row in table.rows:
        t = row["trials"]
        assert row["set_equal"] == f"{t}/{t}"
        assert row["lines_equal"] == f"{t}/{t}"
