"""E12 — delivery-ratio vs offered-load saturation curve."""

from conftest import single_round

from repro.experiments import e12_load_sweep


def test_e12_load_sweep(benchmark, show):
    table = single_round(benchmark, lambda: e12_load_sweep.run(trials=5))
    show("E12: delivery ratio vs offered load", table)
    bfl_curve = [r["bfl"] for r in table.rows]
    assert bfl_curve[0] > 0.9  # light load: (almost) everything delivered
    assert bfl_curve[-1] < bfl_curve[0]  # saturation bites
    for row in table.rows:
        assert row["bfl"] <= row["upper_bound"] + 1e-9
