"""Shared helpers for the benchmark harness.

Every benchmark drives one experiment module from ``repro.experiments``
(the same code the CLI runs) under pytest-benchmark, then prints the
resulting table so the harness output contains the reproduced rows.
Heavy experiments run a single round — the interesting output is the
table, the timing is a bonus.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print an experiment table under the benchmark header."""

    def _show(name: str, table) -> None:
        print()
        print(f"==== {name} ====")
        print(table.render())
        summary = getattr(table, "summary", None)
        if summary is not None:
            print(summary.render())

    return _show


def single_round(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark clock and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
