"""E6 — Theorems 4.4/4.5 / Figure 2: the logarithmic separation family."""

from conftest import single_round

from repro.experiments import e6_lower_bound


def test_e6_lower_bound(benchmark, show):
    table = single_round(benchmark, lambda: e6_lower_bound.run(max_k=8))
    show(
        "E6: I_k family (paper: ratio between (1/2)log2 Λ and 4(log2 Λ + 1))",
        table,
    )
    prev = 0.0
    for row in table.rows:
        assert row["bounds_ok"]
        assert row["ratio"] >= row["half_log_lambda"] - 1e-9
        assert row["ratio"] <= row["upper_bound"] + 1e-9
        # the separation grows without bound, as Theorem 4.5 requires
        assert row["ratio"] >= prev
        prev = row["ratio"]
        # the online D-BFL sandwiches OPT_BL: together with the paper's
        # 2^k cap this pins OPT_BL(I_k) exactly
        assert row["dbfl"] <= row["opt_bl"] <= 2 * row["dbfl"]
    assert table.rows[-1]["ratio"] >= 4.0
