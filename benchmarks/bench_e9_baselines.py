"""E9 — practical throughput comparison against classical baselines."""

from conftest import single_round

from repro.experiments import e9_baselines


def test_e9_baselines(benchmark, show):
    table = single_round(benchmark, lambda: e9_baselines.run(trials=6))
    show("E9: mean throughput per scheduler per workload family", table)
    for row in table.rows:
        # nothing may beat the cut upper bound
        for s in e9_baselines.SCHEDULERS:
            assert row[s] <= row["upper_bound"] + 1e-9
        # D-BFL mimics BFL exactly (Theorem 5.2)
        assert row["dbfl"] == row["bfl"]
        # random assignment should not dominate the informed bufferless rules
        best_informed = max(row["bfl"], row["edf_bufferless"], row["min_laxity"])
        assert row["random"] <= best_informed + 1e-9
