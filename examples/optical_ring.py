#!/usr/bin/env python3
"""Bufferless scheduling on an optical ring.

The paper's bufferless model targets optical networks, where buffering a
packet means an expensive optical-electronic conversion, and notes that
its results extend to rings.  This example schedules wrapping traffic on a
ring with the helix greedy (the ring generalisation of Algorithm BFL) and
compares against the exact optimum.

Run:  python examples/optical_ring.py
"""

import numpy as np

from repro.analysis import Table
from repro.core.ring_bfl import ring_bfl
from repro.exact.ring import opt_ring_bufferless
from repro.network.ring import RingInstance, RingMessage, validate_ring_schedule


def main() -> None:
    n = 10
    rng = np.random.default_rng(11)

    # an all-to-some optical workload: every node talks to a few others,
    # always clockwise, with tight slack (no buffering possible anyway)
    msgs = []
    for src in range(n):
        for _ in range(3):
            span = int(rng.integers(1, n))
            release = int(rng.integers(0, 12))
            slack = int(rng.integers(0, 4))
            msgs.append(
                RingMessage(
                    id=len(msgs),
                    source=src,
                    dest=(src + span) % n,
                    release=release,
                    deadline=release + span + slack,
                    n=n,
                )
            )
    inst = RingInstance(n, tuple(msgs))
    wrapping = sum(1 for m in inst if m.source + m.span >= n)
    print(f"{len(inst)} clockwise packets on a {n}-node ring "
          f"({wrapping} wrap past node 0)")

    greedy = ring_bfl(inst)
    validate_ring_schedule(inst, greedy)
    exact = opt_ring_bufferless(inst)

    table = Table(["scheduler", "delivered", "of", "ratio_vs_exact"])
    table.add(
        scheduler="helix greedy (ring BFL)",
        delivered=greedy.throughput,
        of=len(inst),
        ratio_vs_exact=greedy.throughput / exact.throughput,
    )
    table.add(
        scheduler="exact OPT_BL (MILP)",
        delivered=exact.throughput,
        of=len(inst),
        ratio_vs_exact=1.0,
    )
    print()
    print(table.render())
    print()
    print("the greedy is guaranteed at least half the optimum (Theorem 3.2's")
    print("charging argument survives the wraparound; see DESIGN.md §E11)")

    # show one wrapping trajectory's (link, time) slots
    wrap = next((t for t in greedy.trajectories if t.source + t.span >= n), None)
    if wrap is not None:
        print()
        print(
            f"message {wrap.message_id} wraps: "
            + " -> ".join(f"link{v}@t{t}" for v, t in wrap.edges())
        )


if __name__ == "__main__":
    main()
