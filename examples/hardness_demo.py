#!/usr/bin/env python3
"""The NP-hardness reduction, run end-to-end.

Takes a 3-SAT formula, builds the paper's Appendix-A scheduling instance,
solves it exactly, and reads the satisfying assignment back off the
schedule — making 'scheduling is NP-hard' an executable statement rather
than a proof sketch.

Run:  python examples/hardness_demo.py
"""

import itertools

from repro.exact import opt_bufferless
from repro.hardness import (
    CNF,
    dpll_solve,
    reduce_3sat,
    satisfying_assignment_from_schedule,
)


def pretty(assignment: dict[int, bool]) -> str:
    return ", ".join(
        f"x{v}=" + ("T" if b else "F") for v, b in sorted(assignment.items())
    )


def show(formula: CNF, label: str) -> None:
    print(f"--- {label} ---")
    print("clauses:", " ∧ ".join(
        "(" + " ∨ ".join((f"x{l}" if l > 0 else f"¬x{-l}") for l in cl.literals) + ")"
        for cl in formula.clauses
    ))
    red = reduce_3sat(formula)
    print(
        f"reduced instance: {red.num_messages} messages on "
        f"{red.instance.n} nodes; target throughput N - v = {red.target}"
    )
    result = opt_bufferless(red.instance)
    print(f"exact OPT_BL = {result.throughput}")
    if result.throughput == red.target:
        assignment = satisfying_assignment_from_schedule(red, result.schedule)
        assert assignment is not None and formula.satisfied_by(assignment)
        print(f"target reached -> SATISFIABLE; extracted assignment: {pretty(assignment)}")
        model = dpll_solve(formula)
        print(f"DPLL agrees (its model: {pretty(model)})")
    else:
        print(f"optimum falls short of the target by {red.target - result.throughput} "
              "-> UNSATISFIABLE (DPLL agrees: "
              f"{dpll_solve(formula) is None})")
    print()


def main() -> None:
    # a satisfiable formula
    show(CNF.of(4, [(1, -2, 3), (-1, 2, 4), (2, -3, -4)]), "satisfiable Φ")

    # the canonical unsatisfiable one: all 8 sign patterns over x1..x3
    rows = [
        tuple(s * x for s, x in zip(signs, (1, 2, 3)))
        for signs in itertools.product((1, -1), repeat=3)
    ]
    show(CNF.of(3, rows), "unsatisfiable Φ (all eight sign patterns)")


if __name__ == "__main__":
    main()
