#!/usr/bin/env python3
"""Dimension-order routing on a 2-D mesh — the paper's motivating sketch.

The paper studies lines because, in its own words, a mesh can route each
packet with "near-optimal bufferless routing along rows and along columns"
plus "a single optical-electric conversion to change dimensions".  This
example does exactly that: a matrix-transpose permutation on a 6x6 mesh,
scheduled phase-by-phase with BFL, with and without a conversion cost.

Run:  python examples/mesh_dimension_order.py
"""

import numpy as np

from repro.analysis import Table
from repro.mesh import xy_schedule
from repro.mesh.validate import validate_mesh_schedule
from repro.workloads.meshes import transpose_mesh


def main() -> None:
    rng = np.random.default_rng(3)
    inst = transpose_mesh(rng, n=6, max_release=4, slack=5)
    print(f"matrix transpose on a 6x6 mesh: {len(inst)} packets, "
          f"all of which must turn once")

    table = Table(["conversion_delay", "delivered", "of", "turn_wait", "mean_latency"])
    for conv in (0, 1, 2, 4):
        sched = xy_schedule(inst, conversion_delay=conv)
        validate_mesh_schedule(inst, sched, conversion_delay=conv)
        latencies = [
            sched[m.id].arrive - m.release for m in inst if m.id in sched.delivered_ids
        ]
        table.add(
            conversion_delay=conv,
            delivered=sched.throughput,
            of=len(inst),
            turn_wait=sched.total_turn_wait,
            mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        )
    print()
    print(table.render(title="throughput vs optical-electric conversion cost"))
    print()
    print("one packet's two-phase journey:")
    sched = xy_schedule(inst, conversion_delay=1)
    traj = next(t for t in sched.trajectories if t.row_leg and t.col_leg)
    m = inst[traj.message_id]
    print(
        f"  message {m.id}: {m.source} -> {m.dest}; row phase departs "
        f"t={traj.row_leg.depart}, reaches turn {m.turning_node} at "
        f"t={traj.row_leg.arrive}; waits {traj.turn_wait} step(s) "
        f"(conversion + queueing); column phase arrives t={traj.col_leg.arrive} "
        f"(deadline {m.deadline})"
    )


if __name__ == "__main__":
    main()
