#!/usr/bin/env python3
"""Trace-driven workloads: generate a traffic shape, record, replay, loadtest.

Walks the full trace loop:

* generate a seeded ``bursty`` traffic shape as a workload trace and
  write it to a versioned JSONL file;
* replay it locally through the facade (``api.solve``) and through
  ``run_online``, showing the provenance block riding on the results;
* replay it against a live loopback server and check the served
  decision log is byte-identical to the local one (the trace
  subsystem's headline guarantee);
* run the loadtest harness against the same server at a target rate
  and print throughput and latency percentiles.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import trace
from repro.client import ReproClient
from repro.server import ReproServer


def main() -> None:
    # -- generate: a seeded traffic shape is a workload trace ----------
    t = trace.shape_trace("bursty", seed=7, n=16, messages=200)
    print(
        f"generated {t.shape!r} trace {t.trace_id}: {len(t.records)} messages "
        f"on a {t.n}-node {t.topology}, releases {t.records[0].release}.."
        f"{t.records[-1].release}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bursty.jsonl"
        trace.write_trace(path, t)
        print(f"written to {path.name} ({path.stat().st_size} bytes)\n")

        # -- replay locally: facade and online paths -------------------
        offline = trace.replay(path, regime="bufferless", method="bfl")
        print(
            f"offline replay: delivered {offline.delivered}/{len(t.records)}, "
            f"provenance {offline.workload}"
        )
        local = trace.replay_online(path, policy="bfl")
        print(
            f"online replay:  delivered {len(local.delivered_ids)}/"
            f"{len(t.records)} in {len(local.decisions)} decisions\n"
        )

        # -- replay served: byte-identical to local --------------------
        server = ReproServer(port=0, jobs=1).start_in_thread()
        try:
            with ReproClient(server.url, retries=0) as client:
                served = trace.replay_served(path, client, policy="bfl")
                same = served.to_dict() == local.to_dict()
                print(
                    f"served replay on {server.url}: delivered "
                    f"{len(served.delivered_ids)}, byte-identical to local: "
                    f"{same}"
                )

                # -- loadtest: paced replay with latency percentiles ---
                report = trace.run_loadtest(
                    path, client=client, mode="stream", rate=500.0
                )
                lat = report["latency"]
                print(
                    f"loadtest: fed {report['fed']} msgs at "
                    f"{report['rate_achieved']:.0f}/s "
                    f"(target {report['rate_target']:.0f}/s), "
                    f"p50 {lat['p50_ms']:.1f} ms, "
                    f"p99 {lat['p99_ms']:.1f} ms, "
                    f"shed {report['shed']}"
                )
        finally:
            server.shutdown()

    print(
        "\n(For million-message traces: trace.write_shape_trace streams to "
        "disk and trace.replay_windows replays in O(window) memory — see "
        "`repro trace generate` / `repro trace replay --windows`.)"
    )


if __name__ == "__main__":
    main()
