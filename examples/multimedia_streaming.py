#!/usr/bin/env python3
"""Multimedia streaming over a line — the paper's motivating scenario.

The introduction motivates time-constrained routing with continuous-media
traffic: teleconference audio is worthless after its playout deadline,
video tolerates a little more, bulk transfers are best-effort.  This
example mixes the three classes on a shared backbone, schedules them with
BFL and with the buffered EDF baseline, and reports per-class delivery —
the numbers an operator would actually look at.

Run:  python examples/multimedia_streaming.py
"""

import numpy as np

from repro.analysis import Table
from repro.baselines import EDFPolicy, run_policy
from repro.core.bfl import bfl
from repro.core.dbfl import dbfl
from repro.workloads import multimedia_instance


def per_class_delivery(instance, delivered_ids, class_of) -> dict[str, tuple[int, int]]:
    """class -> (delivered, total)."""
    out: dict[str, list[int]] = {}
    for m in instance:
        cls = class_of[m.id]
        got, total = out.setdefault(cls, [0, 0])
        out[cls][1] += 1
        if m.id in delivered_ids:
            out[cls][0] += 1
    return {k: (v[0], v[1]) for k, v in out.items()}


def main() -> None:
    rng = np.random.default_rng(7)
    inst, class_of = multimedia_instance(rng, n=32, k=120, horizon=60)
    print(
        f"backbone: {inst.n} nodes; {len(inst)} packets "
        f"({sum(1 for c in class_of.values() if c == 'audio')} audio, "
        f"{sum(1 for c in class_of.values() if c == 'video')} video, "
        f"{sum(1 for c in class_of.values() if c == 'bulk')} bulk)"
    )

    schedulers = {
        "BFL (bufferless)": bfl(inst).delivered_ids,
        "D-BFL (distributed)": dbfl(inst).delivered_ids,
        "EDF (buffered)": run_policy(inst, EDFPolicy()).delivered_ids,
    }

    table = Table(["scheduler", "audio", "video", "bulk", "total"])
    for name, delivered in schedulers.items():
        per = per_class_delivery(inst, delivered, class_of)
        table.add(
            scheduler=name,
            audio=f"{per['audio'][0]}/{per['audio'][1]}",
            video=f"{per['video'][0]}/{per['video'][1]}",
            bulk=f"{per['bulk'][0]}/{per['bulk'][1]}",
            total=len(delivered),
        )
    print()
    print(table.render(title="per-class delivered packets"))
    print()
    print(
        "audio packets have slack <= 2, so they are the first casualties of\n"
        "contention; bulk traffic (slack >= 50) almost always survives —\n"
        "exactly the behaviour the deadline model is meant to expose."
    )


if __name__ == "__main__":
    main()
