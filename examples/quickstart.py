#!/usr/bin/env python3
"""Quickstart: schedule time-constrained messages on a linear network.

Builds a small instance, runs the paper's algorithms (BFL and the
distributed online D-BFL), compares them with the exact NP-hard optimum,
and draws the result on the (node, time) lattice.

Run:  python examples/quickstart.py
"""

from repro import bfl, make_instance, validate_schedule
from repro.core.dbfl import dbfl
from repro.exact import opt_buffered, opt_bufferless
from repro.viz.lattice import render_schedule


def main() -> None:
    # (source, dest, release, deadline) — one row per message
    inst = make_instance(
        12,
        [
            (0, 6, 0, 8),  # relaxed: 6 hops, slack 2
            (2, 7, 0, 5),  # tight: must leave immediately
            (1, 5, 2, 9),
            (5, 11, 1, 8),
            (3, 9, 4, 10),
            (0, 3, 6, 12),
        ],
    )
    print(f"instance: {len(inst)} messages on {inst.n} nodes, Λ = {inst.lam}")

    # ---- the paper's 2-approximation (centralized, offline, bufferless)
    schedule = bfl(inst)
    validate_schedule(inst, schedule, require_bufferless=True)
    print(f"BFL delivers {schedule.throughput} messages, all bufferless")
    for traj in schedule:
        print(f"  message {traj.message_id}: departs {traj.depart}, arrives {traj.arrive}")

    # ---- the distributed online equivalent (Theorem 5.2)
    result = dbfl(inst)
    same = result.delivered_ids == schedule.delivered_ids
    print(f"D-BFL delivers the identical set: {same}")

    # ---- how close to optimal? (exact solvers; NP-hard in general)
    print(f"exact OPT_BL = {opt_bufferless(inst).throughput}")
    print(f"exact OPT_B  = {opt_buffered(inst).throughput} (buffering allowed)")

    # ---- the geometric picture
    print()
    print("trajectories through the message parallelograms "
          "(nodes across, time upward):")
    print(render_schedule(inst, schedule))


if __name__ == "__main__":
    main()
