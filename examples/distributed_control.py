#!/usr/bin/env python3
"""Watching D-BFL make distributed decisions, event by event.

Theorem 5.2 says the distributed online D-BFL reproduces the centralized
offline BFL exactly.  This example wraps D-BFL in the event tracer, runs a
contended instance, and prints the per-step log — releases, forwards,
idles, the L-value control traffic, deliveries and drops — so you can see
local decisions composing into the global schedule.

Run:  python examples/distributed_control.py
"""

from repro import bfl, make_instance
from repro.core.dbfl import DBFLPolicy
from repro.network import simulate
from repro.trace.events import TracingPolicy
from repro.viz.gantt import link_gantt


def main() -> None:
    # three messages contending for the middle links
    inst = make_instance(
        8,
        [
            (0, 5, 0, 8),  # long, relaxed
            (2, 6, 1, 7),  # crosses the same middle links
            (1, 4, 0, 4),  # tight: zero slack beyond one line
            (3, 7, 2, 9),
        ],
    )
    tracer = TracingPolicy(DBFLPolicy())
    result = simulate(inst, tracer)
    central = bfl(inst)

    print(f"D-BFL delivered {sorted(result.delivered_ids)}; "
          f"BFL delivered {sorted(central.delivered_ids)}; "
          f"equal = {result.delivered_ids == central.delivered_ids}")
    print()
    print("event log (control values are the per-line L cursors):")
    print(tracer.render())
    print()
    print("link occupancy (rows: links, columns: time, glyphs: message id):")
    print(link_gantt(inst, result.schedule))
    print()
    total_control = len(tracer.of_kind("control"))
    print(f"{total_control} control values exchanged — each an integer in "
          f"[-1, {inst.n - 1}], i.e. the paper's log n bits per link per step.")


if __name__ == "__main__":
    main()
