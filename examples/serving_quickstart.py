#!/usr/bin/env python3
"""Scheduling as a service: a server, a client, and an online stream.

Starts a loopback :class:`repro.server.ReproServer` on an ephemeral
port, then drives it with :class:`repro.client.ReproClient`:

* a remote solve whose result is identical to the local facade's
  (the serving tier's headline guarantee);
* a budgeted exact solve degrading to a certified ``"bounded"`` bracket
  over the wire;
* an online stream session fed batch-by-batch, showing decisions
  becoming final as the release frontier advances.

Run:  python examples/serving_quickstart.py
(For a standalone server: ``repro serve --port 8787``, then point
``ReproClient("http://127.0.0.1:8787")`` or ``repro client`` at it.)
"""

import numpy as np

from repro import SolverBudget, api
from repro.client import ReproClient
from repro.server import ReproServer
from repro.workloads import general_instance


def main() -> None:
    rng = np.random.default_rng(2024)
    inst = general_instance(rng, n=12, k=15, max_release=10, max_slack=6)

    server = ReproServer(port=0, jobs=1).start_in_thread()
    print(f"server up on {server.url}")

    with ReproClient(server.url) as client:
        doc = client.health()
        print(
            f"health: wire v{doc['wire']}, result schema v{doc['result_schema']}, "
            f"{len(client.cells())} dispatch cells\n"
        )

        # -- a remote solve is the local solve -------------------------
        remote = client.solve(inst, "bufferless", "bfl")
        local = api.solve(inst, "bufferless", "bfl")
        same = {
            k: v
            for k, v in remote.to_dict().items()
            if k not in ("telemetry", "request")
        } == {k: v for k, v in local.to_dict().items() if k != "telemetry"}
        print(
            f"solve: delivered {remote.delivered}/{len(inst)} "
            f"(identical to local facade: {same})"
        )
        print(
            f"       request {remote.request['id']} waited "
            f"{remote.request['queue_seconds'] * 1e3:.2f} ms in the queue\n"
        )

        # -- budgets degrade over the wire too -------------------------
        bounded = client.solve(
            inst,
            "bufferless",
            "exact",
            solver="bnb",
            budget=SolverBudget(nodes=2),
            on_budget="degrade",
        )
        print(
            f"budgeted exact: status {bounded.status!r}, certified "
            f"{bounded.lower} <= OPT <= {bounded.upper}\n"
        )

        # -- an online session, fed as messages arrive -----------------
        arrivals = sorted(inst, key=lambda m: (m.release, m.id))
        with client.open_stream(n=inst.n, policy="bfl") as stream:
            for i in range(0, len(arrivals), 5):
                batch = arrivals[i : i + 5]
                final = stream.feed(batch)
                print(
                    f"stream: fed {len(batch)} arrivals "
                    f"(frontier -> {stream.frontier}), "
                    f"{len(final)} decisions became final"
                )
            result = stream.close()
        print(
            f"stream closed: {result.throughput}/{len(inst)} delivered, "
            f"{len(result.decisions)} decisions total"
        )

    server.shutdown()
    print("server stopped")


if __name__ == "__main__":
    main()
