"""Tests for the per-link Gantt view."""

import pytest

from repro.core.bfl import bfl
from repro.core.instance import make_instance
from repro.core.schedule import Schedule
from repro.core.trajectory import Trajectory
from repro.viz.gantt import link_gantt


class TestLinkGantt:
    def test_rows_cover_all_links(self):
        inst = make_instance(5, [(0, 4, 0, 4)])
        out = link_gantt(inst, bfl(inst))
        lines = out.splitlines()
        assert len(lines) == 1 + 4 + 1  # header + 4 links + utilisation

    def test_occupancy_glyphs(self):
        inst = make_instance(4, [(0, 3, 0, 3)])
        out = link_gantt(inst, bfl(inst))
        # message 0 crosses link 0 at t=0, link 1 at t=1, link 2 at t=2
        rows = {l.split()[0]: l for l in out.splitlines()[1:-1]}
        # horizon is deadline + 1 == 4 columns
        assert rows["0->1"].endswith("0...")
        assert rows["1->2"].endswith(".0..")
        assert rows["2->3"].endswith("..0.")

    def test_utilisation_line(self):
        inst = make_instance(4, [(0, 3, 0, 3)])
        out = link_gantt(inst, bfl(inst))
        assert "utilisation: 3/" in out

    def test_base36_wraps_ids(self):
        inst = make_instance(3, [(0, 1, 0, 50)] * 1)
        sched = Schedule((Trajectory(37, 0, (0,)),))  # 37 % 36 == 1 -> '1'
        out = link_gantt(inst, sched, end=2)
        assert "1" in out.splitlines()[1]

    def test_window_validation(self):
        inst = make_instance(3, [(0, 2, 0, 4)])
        with pytest.raises(ValueError, match="empty time window"):
            link_gantt(inst, Schedule(), start=5, end=5)

    def test_custom_window(self):
        inst = make_instance(4, [(0, 3, 0, 3)])
        out = link_gantt(inst, bfl(inst), start=1, end=3)
        header = out.splitlines()[0]
        assert header.endswith("12")
