"""Tests for the exact XY-mesh reference solver."""

import numpy as np
import pytest

from repro.topology.mesh import (
    MeshInstance,
    make_mesh_instance,
    validate_mesh_schedule,
    xy_schedule,
)
from repro.topology.mesh_exact import opt_mesh_xy
from repro.workloads.meshes import mesh_hotspot, random_mesh_instance


class TestBasics:
    def test_empty(self):
        assert opt_mesh_xy(MeshInstance(3, 3, ())).throughput == 0

    def test_single_two_phase_message(self):
        inst = make_mesh_instance(4, 4, [((0, 0), (3, 3), 0, 10)])
        res = opt_mesh_xy(inst)
        assert res.throughput == 1
        validate_mesh_schedule(inst, res.schedule)

    def test_pure_row_and_pure_column(self):
        inst = make_mesh_instance(4, 4, [((1, 0), (1, 3), 0, 5), ((0, 2), (3, 2), 0, 5)])
        res = opt_mesh_xy(inst)
        assert res.throughput == 2

    def test_conversion_delay_respected(self):
        inst = make_mesh_instance(4, 4, [((0, 0), (3, 3), 0, 20)])
        res = opt_mesh_xy(inst, conversion_delay=3)
        validate_mesh_schedule(inst, res.schedule, conversion_delay=3)
        traj = res.schedule[0]
        assert traj.col_leg.depart >= traj.row_leg.arrive + 3

    def test_conversion_can_make_infeasible(self):
        inst = make_mesh_instance(4, 4, [((0, 0), (3, 3), 0, 6)])
        assert opt_mesh_xy(inst).throughput == 1
        assert opt_mesh_xy(inst, conversion_delay=1).throughput == 0

    def test_negative_conversion_rejected(self):
        with pytest.raises(ValueError):
            opt_mesh_xy(MeshInstance(3, 3, ()), conversion_delay=-1)


class TestVsGreedy:
    @pytest.mark.parametrize("seed", range(20))
    def test_dominates_greedy(self, seed):
        rng = np.random.default_rng(10_000 + seed)
        conv = int(rng.integers(0, 2))
        inst = random_mesh_instance(
            rng, rows=4, cols=4, k=int(rng.integers(3, 10)),
            max_release=6, max_slack=3, conversion_delay=conv,
        )
        exact = opt_mesh_xy(inst, conversion_delay=conv)
        validate_mesh_schedule(inst, exact.schedule, conversion_delay=conv)
        greedy = xy_schedule(inst, conversion_delay=conv)
        assert greedy.throughput <= exact.throughput

    def test_known_phase_split_gap(self):
        """A case where scheduling rows blind to columns loses a message:
        two messages whose row phases are compatible either way, but only
        one row ordering leaves both column phases alive."""
        rng = np.random.default_rng(10_000)  # seed 0 of the sweep above
        found_gap = False
        for _ in range(60):
            conv = int(rng.integers(0, 2))
            inst = random_mesh_instance(
                rng, rows=4, cols=4, k=int(rng.integers(3, 12)),
                max_release=6, max_slack=3, conversion_delay=conv,
            )
            exact = opt_mesh_xy(inst, conversion_delay=conv).throughput
            greedy = xy_schedule(inst, conversion_delay=conv).throughput
            if greedy < exact:
                found_gap = True
                break
        assert found_gap, "expected at least one phase-split gap in the sweep"

    def test_hotspot_bottleneck(self):
        rng = np.random.default_rng(11)
        inst = mesh_hotspot(rng, rows=4, cols=4, k=10, hotspot=(2, 2))
        exact = opt_mesh_xy(inst)
        validate_mesh_schedule(inst, exact.schedule)
        assert exact.throughput <= len(inst)
