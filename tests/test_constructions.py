"""Tests for the Section-4 constructions (lower bound, conversions, credits)."""

import math

import numpy as np
import pytest

from repro.core.bfl import bfl
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.schedule import Schedule
from repro.core.trajectory import Trajectory
from repro.core.validate import validate_schedule
from repro.constructions import (
    credit_audit,
    delivery_line_filter,
    lower_bound_buffered_schedule,
    lower_bound_instance,
    lower_bound_optbl_cap,
    span_partition_conversion,
    single_conflict_counts,
)
from repro.constructions.lower_bound import lower_bound_size
from repro.constructions.span_conversion import ConversionReport, anchor_column
from repro.exact import opt_buffered, opt_bufferless

from .conftest import random_lr_instance


def uniform_span_instance(rng, *, n=12, delta=3, k=6, max_release=5, max_slack=4):
    msgs = []
    for i in range(k):
        s = int(rng.integers(0, n - delta))
        r = int(rng.integers(0, max_release + 1))
        sl = int(rng.integers(0, max_slack + 1))
        msgs.append(Message(i, s, s + delta, r, r + delta + sl))
    return Instance(n, tuple(msgs))


class TestLowerBoundFamily:
    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            lower_bound_instance(-1)
        with pytest.raises(ValueError):
            lower_bound_buffered_schedule(-1)

    def test_base_case(self):
        inst = lower_bound_instance(0)
        assert len(inst) == 1
        (m,) = inst.messages
        assert (m.source, m.dest, m.release, m.deadline) == (0, 1, 0, 1)

    @pytest.mark.parametrize("k", range(7))
    def test_size_recurrence(self, k):
        assert len(lower_bound_instance(k)) == lower_bound_size(k)

    @pytest.mark.parametrize("k", range(7))
    def test_buffered_schedule_delivers_everything(self, k):
        inst = lower_bound_instance(k)
        sched = lower_bound_buffered_schedule(k)
        validate_schedule(inst, sched)
        assert sched.throughput == len(inst)

    @pytest.mark.parametrize("k", range(4))
    def test_bufferless_cap_is_exact(self, k):
        inst = lower_bound_instance(k)
        assert opt_bufferless(inst).throughput == lower_bound_optbl_cap(k)

    @pytest.mark.parametrize("k", range(1, 7))
    def test_lambda_parameter(self, k):
        inst = lower_bound_instance(k)
        assert inst.max_slack == (1 << k) - 1
        assert inst.max_span == 1 << k
        assert inst.lam == (1 << k) - 1

    @pytest.mark.parametrize("k", range(2, 7))
    def test_theorem45_separation(self, k):
        """OPT_B / OPT_BL >= (1/2) log Λ on the family."""
        inst = lower_bound_instance(k)
        ratio = lower_bound_size(k) / lower_bound_optbl_cap(k)
        assert ratio >= 0.5 * math.log2(inst.lam)

    def test_buffering_is_essential(self):
        # the S_k messages genuinely wait in the explicit schedule
        sched = lower_bound_buffered_schedule(3)
        assert sched.total_wait > 0


class TestAnchorColumn:
    def test_unique_multiple(self):
        t = Trajectory(0, 2, (0, 1, 2))  # span 3, interval [2, 5]
        assert anchor_column(t, 3) == 4

    def test_endpoint_anchor(self):
        t = Trajectory(0, 4, (0, 1, 2))  # interval [4, 7]: multiple of 4 is 4
        assert anchor_column(t, 3) == 4

    def test_wrong_span_rejected(self):
        t = Trajectory(0, 1, (0,))  # interval [1, 2], span 1
        with pytest.raises(ValueError):
            anchor_column(t, 5)


class TestSpanConversion:
    def test_empty_schedule(self):
        inst = Instance(4, ())
        assert span_partition_conversion(inst, Schedule()).throughput == 0

    def test_mixed_spans_rejected(self):
        inst = Instance(
            8, (Message(0, 0, 2, 0, 9), Message(1, 3, 6, 0, 9))
        )
        sched = opt_buffered(inst).schedule
        with pytest.raises(ValueError, match="multiple spans"):
            span_partition_conversion(inst, sched)

    def test_paper_rule_counterexample_handled(self):
        """The literal Thm 4.2 line formula collides on this instance
        (through-message waits at its anchor column); our repaired
        assignment still converts both messages (see module docstring)."""
        inst = Instance(
            8,
            (
                Message(0, 2, 4, 4, 7),  # X: crossings (4, 6) — waits at 3
                Message(1, 3, 5, 5, 7),  # A: crossings (5, 6)
            ),
        )
        buffered = Schedule(
            (Trajectory(0, 2, (4, 6)), Trajectory(1, 3, (5, 6)))
        )
        validate_schedule(inst, buffered)
        # both anchored at column 3, paper's lines coincide:
        assert anchor_column(buffered[0], 2) == anchor_column(buffered[1], 2) == 3
        conv = span_partition_conversion(inst, buffered, full_report=True)
        assert isinstance(conv, ConversionReport)
        validate_schedule(inst, conv.schedule, require_bufferless=True)
        assert conv.dropped == 0
        assert conv.throughput == 2

    @pytest.mark.parametrize("seed", range(25))
    def test_factor_two_guarantee(self, seed):
        rng = np.random.default_rng(6000 + seed)
        delta = int(rng.integers(1, 5))
        inst = uniform_span_instance(rng, delta=delta, k=int(rng.integers(2, 8)))
        buffered = opt_buffered(inst).schedule
        conv = span_partition_conversion(inst, buffered, full_report=True)
        validate_schedule(inst, conv.schedule, require_bufferless=True)
        assert 2 * conv.throughput >= buffered.throughput
        assert sum(conv.class_sizes) == buffered.throughput

    @pytest.mark.parametrize("seed", range(15))
    def test_theorem42_bound_via_exact(self, seed):
        rng = np.random.default_rng(6100 + seed)
        inst = uniform_span_instance(rng, delta=int(rng.integers(1, 4)), k=6)
        opt_b = opt_buffered(inst).throughput
        opt_bl = opt_bufferless(inst).throughput
        assert opt_b <= 2 * opt_bl


class TestStaticConversion:
    def test_requires_static(self):
        inst = Instance(6, (Message(0, 0, 2, 1, 9),))
        sched = opt_buffered(inst).schedule
        with pytest.raises(ValueError, match="static"):
            delivery_line_filter(inst, sched)

    @pytest.mark.parametrize("seed", range(20))
    def test_filter_output_valid(self, seed):
        rng = np.random.default_rng(6200 + seed)
        inst = random_lr_instance(rng, max_release=0, k_hi=7, max_slack=4)
        buffered = opt_buffered(inst).schedule
        filtered = delivery_line_filter(inst, buffered)
        validate_schedule(inst, filtered, require_bufferless=True)
        assert filtered.throughput <= buffered.throughput

    def test_filter_on_single_conflict_keeps_half(self):
        # a comb: one long message over k short ones, all on one line
        inst = Instance(
            10,
            (
                Message(0, 0, 9, 0, 9),
                Message(1, 1, 3, 0, 3),
                Message(2, 4, 6, 0, 6),
            ),
        )
        buffered = opt_buffered(inst).schedule
        counts = single_conflict_counts(buffered)
        if max(counts.values(), default=0) <= 1:
            filtered = delivery_line_filter(inst, buffered)
            assert 2 * filtered.throughput >= buffered.throughput

    @pytest.mark.parametrize("seed", range(15))
    def test_theorem43_bound_via_exact(self, seed):
        rng = np.random.default_rng(6300 + seed)
        inst = random_lr_instance(rng, max_release=0, k_hi=7, max_slack=4)
        assert opt_buffered(inst).throughput <= 2 * opt_bufferless(inst).throughput

    def test_single_conflict_counts_definition(self):
        # m' (0->5) and m (2->4) finish on the same line; s'=0 < d=4 < d'=5
        a = Trajectory(0, 0, (0, 1, 2, 3, 4))
        b = Trajectory(1, 2, (4, 5))  # final hop crosses (3,4) at 5: line -2
        # a's final hop crosses (4,5) at 4: line 0 -> different lines: no conflict
        assert single_conflict_counts(Schedule((a, b))) == {0: 0, 1: 0}


class TestCreditAudit:
    @pytest.mark.parametrize("seed", range(20))
    def test_lemma_bounds_hold(self, seed):
        rng = np.random.default_rng(6400 + seed)
        inst = random_lr_instance(rng, k_hi=7, max_slack=5)
        schedule = bfl(inst)
        buffered = opt_buffered(inst).schedule
        audit = credit_audit(inst, schedule, buffered)
        assert audit.max_received <= audit.lemma41_bound(inst) + 1e-9
        assert audit.max_received <= audit.lemma42_bound(inst) + 1e-9
        # conservation: donated == received
        assert audit.donated_total == pytest.approx(sum(audit.received.values()))

    @pytest.mark.parametrize("seed", range(15))
    def test_theorem41_uniform_slack(self, seed):
        rng = np.random.default_rng(6500 + seed)
        n = 12
        slack = int(rng.integers(0, 4))
        msgs = []
        for i in range(6):
            s = int(rng.integers(0, n - 1))
            d = int(rng.integers(s + 1, n))
            r = int(rng.integers(0, 5))
            msgs.append(Message(i, s, d, r, r + (d - s) + slack))
        inst = Instance(n, tuple(msgs))
        audit = credit_audit(inst, bfl(inst), opt_buffered(inst).schedule)
        assert audit.max_received <= audit.theorem41_bound() + 1e-9
        # the theorem itself
        assert opt_buffered(inst).throughput <= 3 * opt_bufferless(inst).throughput

    def test_every_missed_line_blocked(self):
        # if the audit completes without error, BFL's maximality held
        rng = np.random.default_rng(99)
        inst = random_lr_instance(rng, k_hi=8, max_slack=3)
        audit = credit_audit(inst, bfl(inst), opt_buffered(inst).schedule)
        missed = opt_buffered(inst).schedule.delivered_ids - bfl(inst).delivered_ids
        expected = sum(1 + inst[mid].slack for mid in missed)
        assert len(audit.blockers) == expected
