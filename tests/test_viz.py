"""Tests for the ASCII lattice renderer and figure regeneration."""

import pytest

from repro.core.bfl import bfl
from repro.core.instance import make_instance
from repro.core.trajectory import Trajectory
from repro.viz import LatticeCanvas, figure1, figure2, figure3, render_instance, render_schedule
from repro.viz.figures import figure1_instance


class TestCanvas:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            LatticeCanvas(1, 5)
        with pytest.raises(ValueError):
            LatticeCanvas(4, 0)

    def test_put_and_render_orientation(self):
        c = LatticeCanvas(3, 3)
        c.put(0, 0, "A")
        c.put(2, 2, "B")
        out = c.render(axis=False).splitlines()
        # time increases upward: B (t=2) on the first line, A (t=0) last
        assert "B" in out[0]
        assert "A" in out[-1]

    def test_out_of_range_writes_ignored(self):
        c = LatticeCanvas(3, 3)
        c.put(9, 9, "X")  # silently clipped
        assert "X" not in c.render()

    def test_diagonal_uses_half_columns(self):
        c = LatticeCanvas(4, 4)
        c.diagonal(0, 0, 3)
        rows = c.render(axis=False).splitlines()
        assert rows[-1][1] == "/"  # between node 0 and 1 at t=0

    def test_axis_labels(self):
        c = LatticeCanvas(12, 2)
        out = c.render().splitlines()
        assert out[-1].strip().startswith("0 1 2")


class TestRenderers:
    def test_render_instance_contains_corners(self):
        inst = make_instance(8, [(1, 4, 2, 9)])
        out = render_instance(inst)
        assert "." in out and "|" in out and "/" in out

    def test_render_schedule_buffered_riser(self):
        inst = make_instance(6, [(0, 2, 0, 9)])
        sched_traj = Trajectory(0, 0, (0, 4))  # waits at node 1
        from repro.core.schedule import Schedule

        out = render_schedule(inst, Schedule((sched_traj,)), windows=False)
        assert "|" in out  # the riser

    def test_schedule_labels_sources(self):
        inst = make_instance(8, [(1, 4, 2, 9)])
        out = render_schedule(inst, bfl(inst), windows=False)
        assert "0" in out  # message id label at the source


class TestFigures:
    def test_figure1_reports_table_and_throughput(self):
        out = figure1()
        assert "22-node" in out
        assert "schedules all 6" in out
        # all six table rows present
        for src, dst in [(2, 9), (2, 12), (2, 7), (5, 14), (10, 18), (11, 13)]:
            assert f"{src} " in out and f"{dst} " in out

    def test_figure1_instance_matches_paper_table(self, paper_example):
        assert figure1_instance().messages == paper_example.messages

    def test_figure2_reports_caps(self):
        out = figure2(2)
        assert "I_2" in out
        assert "OPT_B = 8" in out
        assert "OPT_BL <= 4" in out

    def test_figure3_lists_all_gadget_messages(self):
        out = figure3()
        for kind in ("pA@0", "pB@0", "pC@0", "pX@0", "p1@0", "p2@0", "p3@0"):
            assert kind in out
