"""Unit tests for the Message value type."""

import pytest

from repro.core.message import Direction, Message


def msg(s=0, d=5, r=0, dl=10, i=0):
    return Message(id=i, source=s, dest=d, release=r, deadline=dl)


class TestConstruction:
    def test_basic_fields(self):
        m = msg()
        assert (m.source, m.dest, m.release, m.deadline) == (0, 5, 0, 10)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="source == dest"):
            Message(0, 3, 3, 0, 5)

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="negative node"):
            Message(0, -1, 3, 0, 5)

    def test_rejects_negative_release(self):
        with pytest.raises(ValueError, match="negative release"):
            Message(0, 0, 3, -2, 5)

    def test_rejects_deadline_before_release(self):
        with pytest.raises(ValueError, match="deadline"):
            Message(0, 0, 3, 7, 5)

    def test_frozen(self):
        m = msg()
        with pytest.raises(AttributeError):
            m.source = 3  # type: ignore[misc]

    def test_hashable_and_equal(self):
        assert msg() == msg()
        assert hash(msg()) == hash(msg())
        assert msg(i=1) != msg(i=2)


class TestDerived:
    def test_direction(self):
        assert msg(s=1, d=4).direction == Direction.LEFT_TO_RIGHT
        assert msg(s=4, d=1).direction == Direction.RIGHT_TO_LEFT

    def test_span(self):
        assert msg(s=2, d=9).span == 7
        assert msg(s=9, d=2).span == 7

    def test_slack(self):
        # paper example message 1: 2 -> 9, release 2, deadline 13: slack = 13-2-7 = 4
        assert msg(s=2, d=9, r=2, dl=13).slack == 4

    def test_zero_slack(self):
        m = msg(s=0, d=4, r=3, dl=7)
        assert m.slack == 0
        assert m.feasible

    def test_negative_slack_infeasible(self):
        m = msg(s=0, d=6, r=3, dl=7)
        assert m.slack == -2
        assert not m.feasible

    def test_departure_arrival_windows(self):
        m = msg(s=2, d=9, r=2, dl=13)
        assert m.latest_departure == 6
        assert m.earliest_arrival == 9


class TestScanLineGeometry:
    def test_alpha_window(self):
        m = msg(s=2, d=9, r=2, dl=13)
        assert m.alpha_max == 0  # source - release
        assert m.alpha_min == -4  # dest - deadline
        assert m.alpha_max - m.alpha_min == m.slack

    def test_departure_alpha_roundtrip(self):
        m = msg(s=3, d=8, r=1, dl=12)
        for depart in range(m.release, m.latest_departure + 1):
            alpha = m.alpha_for_departure(depart)
            assert m.relevant_to(alpha)
            assert m.departure_for_alpha(alpha) == depart

    def test_not_relevant_outside_window(self):
        m = msg(s=3, d=8, r=1, dl=12)
        assert not m.relevant_to(m.alpha_max + 1)
        assert not m.relevant_to(m.alpha_min - 1)

    def test_number_of_lines_is_slack_plus_one(self):
        m = msg(s=3, d=8, r=1, dl=12)
        count = sum(1 for a in range(-50, 50) if m.relevant_to(a))
        assert count == m.slack + 1


class TestTransforms:
    def test_mirror_swaps_direction(self):
        m = msg(s=2, d=9, r=2, dl=13)
        mm = m.mirrored(22)
        assert (mm.source, mm.dest) == (19, 12)
        assert mm.direction == Direction.RIGHT_TO_LEFT
        assert mm.slack == m.slack and mm.span == m.span

    def test_mirror_involution(self):
        m = msg(s=2, d=9, r=2, dl=13)
        assert m.mirrored(22).mirrored(22) == m

    def test_translate(self):
        m = msg(s=2, d=9, r=2, dl=13).translated(dnode=3, dtime=5)
        assert (m.source, m.dest, m.release, m.deadline) == (5, 12, 7, 18)

    def test_translate_preserves_slack_span(self):
        m = msg(s=2, d=9, r=2, dl=13)
        t = m.translated(1, 7)
        assert (t.slack, t.span) == (m.slack, m.span)

    def test_with_id(self):
        assert msg(i=0).with_id(42).id == 42

    def test_clip_slack_reduces_deadline(self):
        m = msg(s=0, d=3, r=0, dl=20)  # slack 17
        c = m.clipped_slack(5)
        assert c.slack == 5
        assert c.deadline == 8
        assert c.release == m.release

    def test_clip_slack_noop_when_small(self):
        m = msg(s=0, d=3, r=0, dl=5)  # slack 2
        assert m.clipped_slack(5) is m

    def test_clip_slack_rejects_negative(self):
        with pytest.raises(ValueError):
            msg().clipped_slack(-1)
