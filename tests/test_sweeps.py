"""Tests for the sweep framework and the curve experiments (E12/E13)."""

import numpy as np
import pytest

from repro.analysis.sweeps import sweep
from repro.core.bfl import bfl
from repro.experiments import e12_load_sweep, e13_slack_sweep
from repro.workloads import general_instance


class TestSweepFramework:
    def test_requires_values_and_schedulers(self):
        gen = lambda rng, v: general_instance(rng, n=8, k=4)
        with pytest.raises(ValueError, match="parameter value"):
            sweep("x", [], gen, {"bfl": lambda i: bfl(i).throughput})
        with pytest.raises(ValueError, match="scheduler"):
            sweep("x", [1], gen, {})

    def test_row_per_value_column_per_scheduler(self):
        table = sweep(
            "k",
            [3, 6],
            lambda rng, k: general_instance(rng, n=10, k=k),
            {"bfl": lambda i: bfl(i).throughput},
            trials=3,
        )
        assert len(table.rows) == 2
        assert set(table.columns) == {"k", "messages", "upper_bound", "bfl"}

    def test_relative_mode_bounded_by_one(self):
        table = sweep(
            "k",
            [5],
            lambda rng, k: general_instance(rng, n=10, k=k, max_slack=10),
            {"bfl": lambda i: bfl(i).throughput},
            trials=4,
            relative=True,
        )
        assert 0.0 <= table.rows[0]["bfl"] <= 1.0

    def test_absolute_mode(self):
        table = sweep(
            "k",
            [5],
            lambda rng, k: general_instance(rng, n=10, k=k),
            {"bfl": lambda i: bfl(i).throughput},
            trials=4,
            relative=False,
        )
        assert table.rows[0]["bfl"] <= 5

    def test_deterministic_given_seed(self):
        args = (
            "k",
            [4],
            lambda rng, k: general_instance(rng, n=10, k=k),
            {"bfl": lambda i: bfl(i).throughput},
        )
        a = sweep(*args, seed=7, trials=5)
        b = sweep(*args, seed=7, trials=5)
        assert a.rows == b.rows


class TestE12:
    def test_ratio_degrades_with_load(self):
        table = e12_load_sweep.run(seed=1, trials=4)
        bfl_curve = [r["bfl"] for r in table.rows]
        # light load delivers (nearly) everything; heavy load cannot
        assert bfl_curve[0] > 0.9
        assert bfl_curve[-1] < bfl_curve[0]

    def test_upper_bound_respected(self):
        table = e12_load_sweep.run(seed=1, trials=3)
        for row in table.rows:
            for col in ("bfl", "dbfl", "first_fit", "edf_buffered", "llf_buffered"):
                assert row[col] <= row["upper_bound"] + 1e-9

    def test_dbfl_tracks_bfl(self):
        table = e12_load_sweep.run(seed=1, trials=3)
        for row in table.rows:
            assert row["dbfl"] == pytest.approx(row["bfl"])


class TestE13:
    def test_more_slack_never_hurts_much(self):
        table = e13_slack_sweep.run(seed=1, trials=4)
        curve = [r["bfl"] for r in table.rows]
        # the curve should trend upward from slack 0 to slack 16
        assert curve[-1] >= curve[0]

    def test_columns(self):
        table = e13_slack_sweep.run(seed=1, trials=2)
        assert "max_slack" in table.columns and "edf_buffered" in table.columns
