"""The bounded-buffer model dimension, end to end.

Covers the ``repro.buffers`` vocabulary (capacity checks, admission
policies, :class:`BoundedBuffer` properties), the ``None`` ==
byte-identical-to-history guarantee across every serialization layer,
the v5 ``buffers`` provenance block, the ``method="ca"`` family through
the facade *and* a live HTTP server, and the ``dbfl(buffer_capacity=)``
deprecation shim.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro import api
from repro._deprecation import ReproDeprecationWarning
from repro.approx import ca_schedule
from repro.baselines import EDFPolicy
from repro.buffers import (
    ADMISSION_POLICIES,
    BoundedBuffer,
    DEFAULT_ADMISSION,
    admission_victim,
    check_admission,
    check_capacity,
)
from repro.core.dbfl import dbfl
from repro.core.instance import Instance, make_instance
from repro.core.validate import schedule_problems, validate_schedule
from repro.io import instance_from_dict, instance_to_dict
from repro.network.simulator import simulate
from repro.trace.format import WorkloadTrace, read_trace, write_trace
from repro.workloads import general_instance, saturated_instance


def _rand_inst(seed=0, n=10, k=8):
    return general_instance(np.random.default_rng(seed), n=n, k=k)


@pytest.fixture
def inst():
    return _rand_inst()


# --------------------------------------------------------------------- #
# The vocabulary module
# --------------------------------------------------------------------- #


class Item:
    def __init__(self, id, deadline, crossings=(1,)):
        self.id = id
        self.deadline = deadline
        self.crossings = crossings

    def __repr__(self):
        return f"Item({self.id}, dl={self.deadline})"


class TestVocabulary:
    def test_check_capacity(self):
        assert check_capacity(None) is None
        assert check_capacity(0) == 0
        assert check_capacity(7) == 7
        with pytest.raises(ValueError):
            check_capacity(-1)
        with pytest.raises(ValueError):
            check_capacity(True)  # bools are not capacities
        with pytest.raises(ValueError):
            check_capacity(2.0)

    def test_check_admission(self):
        for name in ADMISSION_POLICIES:
            assert check_admission(name) == name
        with pytest.raises(ValueError, match="unknown admission"):
            check_admission("drop-oldest")

    def test_drop_new_always_rejects_arrival(self):
        buf = [Item(1, 5), Item(2, 9)]
        inc = Item(3, 1)
        assert admission_victim(buf, inc, "drop-new") is inc

    def test_farthest_deadline_contest(self):
        buf = [Item(1, 5), Item(2, 9)]
        assert admission_victim(buf, Item(3, 1), "drop-farthest-deadline") is buf[1]
        # the arrival loses when it is the least urgent
        inc = Item(3, 99)
        assert admission_victim(buf, inc, "drop-farthest-deadline") is inc

    def test_source_packets_are_never_evicted(self):
        # crossings == () marks a packet still at its own source
        src = Item(1, 99, crossings=())
        inc = Item(2, 1)
        assert admission_victim([src], inc, "drop-farthest-deadline") is inc

    def test_evict_lowest_priority_needs_a_key(self):
        with pytest.raises(ValueError, match="priority key"):
            admission_victim([Item(1, 5)], Item(2, 1), "evict-lowest-priority")
        loser = admission_victim(
            [Item(1, 5)], Item(2, 1), "evict-lowest-priority", lambda p: (p.deadline, p.id)
        )
        assert loser.id == 1


class TestBoundedBuffer:
    def test_fifo_order(self):
        buf = BoundedBuffer(3)
        for i in range(3):
            assert buf.offer(Item(i, i)) is None
        assert [buf.extract().id for _ in range(3)] == [0, 1, 2]

    def test_unbounded_never_full(self):
        buf = BoundedBuffer(None)
        for i in range(100):
            assert buf.offer(Item(i, i)) is None
        assert not buf.is_full() and len(buf) == 100

    def test_eviction_counts(self):
        buf = BoundedBuffer(1, admission="drop-farthest-deadline")
        assert buf.offer(Item(1, 9)) is None
        loser = buf.offer(Item(2, 1))  # more urgent: displaces item 1
        assert loser.id == 1 and buf.evicted == 1 and buf.rejected == 0
        loser = buf.offer(Item(3, 99))  # least urgent: bounces
        assert loser.id == 3 and buf.rejected == 1

    def test_append_extract_plain_fifo(self):
        buf = BoundedBuffer(1)
        assert buf.append("a") is True
        assert buf.append("b") is False
        assert buf.extract() == "a"
        with pytest.raises(IndexError):
            buf.extract()

    @pytest.mark.parametrize("admission", ADMISSION_POLICIES)
    def test_retained_set_is_monotone_in_capacity(self, admission):
        # property: whatever a capacity-c buffer retains after any offer
        # sequence is at most what a capacity-(c+1) buffer retains, and
        # every buffer's content is a subset of the offered items
        rng = random.Random(42)
        for trial in range(50):
            items = [Item(i, rng.randint(0, 20)) for i in range(rng.randint(0, 12))]
            sizes = []
            for cap in (0, 1, 2, 3, None):
                buf = BoundedBuffer(cap, admission=admission)
                for it in items:
                    buf.offer(it)
                ids = {it.id for it in buf}
                assert ids <= {it.id for it in items}
                assert buf.rejected + buf.evicted + len(buf) == len(items)
                sizes.append(len(buf))
            assert sizes == sorted(sizes), f"trial={trial} {admission}"


# --------------------------------------------------------------------- #
# None == byte-identical: the unbounded corpus must not notice this PR
# --------------------------------------------------------------------- #


class TestNoneIsInvisible:
    def test_instance_document_has_no_capacity_key(self, inst):
        doc = instance_to_dict(inst)
        assert "buffer_capacity" not in doc
        assert instance_to_dict(inst.with_buffer_capacity(None)) == doc
        bounded = instance_to_dict(inst.with_buffer_capacity(2))
        assert bounded["buffer_capacity"] == 2
        assert instance_from_dict(bounded).buffer_capacity == 2

    def test_content_hash_unchanged_for_unbounded(self, inst):
        assert inst.content_hash == inst.with_buffer_capacity(None).content_hash
        assert inst.content_hash != inst.with_buffer_capacity(2).content_hash

    def test_canonical_form_tags_capacity(self, inst):
        assert ("buffer_capacity", 2) in inst.with_buffer_capacity(2).canonical_form()
        assert ("buffer_capacity", 2) not in inst.canonical_form()

    def test_transformations_preserve_capacity(self, inst):
        capped = inst.with_buffer_capacity(3)
        assert capped.mirrored().buffer_capacity == 3
        assert capped.restrict(m.id for m in capped).buffer_capacity == 3
        assert capped.filter(lambda m: True).buffer_capacity == 3
        assert capped.translated(0, 1).buffer_capacity == 3

    def test_trace_roundtrip_carries_capacity(self, tmp_path, inst):
        capped = inst.with_buffer_capacity(2)
        trace = WorkloadTrace.from_instance(capped, trace_id="tr-cap")
        assert trace.buffer_capacity == 2
        path = tmp_path / "cap.jsonl"
        write_trace(path, trace)
        back = read_trace(path)
        assert back.buffer_capacity == 2
        rebuilt = back.to_instance()
        assert rebuilt.buffer_capacity == 2
        # record order is the trace's (release-sorted); compare canonically
        assert rebuilt.canonical_form() == capped.canonical_form()

    def test_unbounded_trace_header_is_legacy_shaped(self, tmp_path, inst):
        path = tmp_path / "plain.jsonl"
        write_trace(path, WorkloadTrace.from_instance(inst, trace_id="tr-plain"))
        head = json.loads(path.read_text().splitlines()[0])
        assert "buffer_capacity" not in head

    def test_facade_payload_unchanged_when_unbounded(self, inst):
        payload = api.solve(inst, "buffered", "greedy", policy="edf").to_dict()
        # the block is omitted entirely for the unbounded model
        assert "buffers" not in payload
        # from_dict of a v4-era document (no buffers key) still parses
        payload.pop("buffers", None)
        payload["version"] = 4
        assert api.ScheduleResult.from_dict(payload).buffers is None


# --------------------------------------------------------------------- #
# Simulator enforcement + validation
# --------------------------------------------------------------------- #


class TestSimulatorEnforcement:
    def test_overflow_drops_are_attributed(self):
        inst = saturated_instance(
            np.random.default_rng(5), n=12, load=2.0, horizon=15
        ).with_buffer_capacity(0)
        res = simulate(inst, EDFPolicy())
        assert res.stats.buffer_overflow_drops > 0
        assert any(why == "buffer_full" for _, _, why in res.drop_events)

    @pytest.mark.parametrize("admission", ADMISSION_POLICIES)
    def test_bounded_output_validates_against_capacity(self, admission):
        for seed in range(8):
            inst = _rand_inst(seed, n=12, k=14).with_buffer_capacity(1)
            res = simulate(inst, EDFPolicy(), admission=admission)
            # the enforced capacity is also respected by the surviving
            # schedule — the validator defaults to instance.buffer_capacity
            assert schedule_problems(inst, res.schedule) == []

    def test_validator_flags_overflowing_schedule(self):
        from repro.core.schedule import Schedule
        from repro.core.trajectory import Trajectory

        inst = make_instance(4, [(0, 2, 0, 9)])
        # crosses link 0 at t=1, waits at node 1 through t=2, crosses at t=3
        waiting = Schedule((Trajectory(0, 0, (1, 3)),))
        assert schedule_problems(inst, waiting) == []
        problems = schedule_problems(inst.with_buffer_capacity(0), waiting)
        assert any("exceeds capacity" in p for p in problems)

    def test_huge_capacity_equals_unbounded(self):
        # capacity >= number of messages can never bind
        for seed in range(6):
            inst = _rand_inst(seed, n=10, k=10)
            free = simulate(inst, EDFPolicy())
            capped = simulate(inst.with_buffer_capacity(len(inst)), EDFPolicy())
            assert free.schedule == capped.schedule
            assert free.delivered_ids == capped.delivered_ids

    def test_unknown_admission_rejected(self, inst):
        with pytest.raises(ValueError, match="unknown admission"):
            simulate(inst, EDFPolicy(), buffer_capacity=1, admission="nope")


# --------------------------------------------------------------------- #
# The ca solver family
# --------------------------------------------------------------------- #


class TestCASolver:
    def test_schedules_validate_by_construction(self):
        for seed in range(10):
            inst = _rand_inst(seed, n=12, k=14)
            for cap in (0, 1, 2, None):
                capped = inst if cap is None else inst.with_buffer_capacity(cap)
                result = ca_schedule(capped)
                validate_schedule(capped, result.schedule)
                assert result.delivered_ids.isdisjoint(result.rejected_ids)
                assert result.delivered_ids | result.rejected_ids == {
                    m.id for m in inst
                }

    def test_capacity_zero_is_bufferless(self):
        for seed in range(6):
            inst = _rand_inst(seed, n=10, k=12).with_buffer_capacity(0)
            result = ca_schedule(inst)
            # no waiting after the first crossing anywhere
            validate_schedule(inst, result.schedule)
            for traj in result.schedule:
                waits = [b - a - 1 for a, b in zip(traj.crossings, traj.crossings[1:])]
                assert all(w == 0 for w in waits), traj

    def test_mixed_direction_rejected(self):
        from repro.core.message import Message

        inst = Instance(
            4, (Message(id=1, source=3, dest=0, release=0, deadline=9),)
        )
        with pytest.raises(ValueError, match="split directions"):
            ca_schedule(inst)

    def test_facade_cell(self, inst):
        res = api.solve(inst, "buffered", "ca")
        assert res.method == "ca"
        assert res.optimal is None  # heuristic: no optimality certificate
        assert res.telemetry["algorithm"] == "emr-greedy-reservation"
        bounded = api.solve(inst.with_buffer_capacity(0), "buffered", "ca")
        assert bounded.delivered <= res.delivered
        assert bounded.buffers == {"capacity": 0, "admission": DEFAULT_ADMISSION}

    def test_never_beats_exact_opt(self):
        for seed in range(5):
            inst = _rand_inst(seed, n=8, k=6)
            ca = api.solve(inst, "buffered", "ca")
            opt = api.solve(inst, "buffered", "exact")
            assert ca.delivered <= opt.delivered


# --------------------------------------------------------------------- #
# Schema v5 provenance
# --------------------------------------------------------------------- #


class TestBuffersBlock:
    def test_present_only_when_bounded(self, inst):
        free = api.solve(inst, "buffered", "greedy", policy="edf")
        assert free.buffers is None
        bounded = api.solve(
            inst.with_buffer_capacity(1), "buffered", "greedy", policy="edf"
        )
        assert bounded.buffers == {"capacity": 1, "admission": DEFAULT_ADMISSION}
        payload = bounded.to_dict()
        assert payload["version"] == 5
        assert payload["buffers"] == {"capacity": 1, "admission": DEFAULT_ADMISSION}
        assert api.ScheduleResult.from_dict(payload).buffers == bounded.buffers

    def test_non_default_admission_is_stamped(self, inst):
        res = api.solve(
            inst.with_buffer_capacity(1),
            "buffered",
            "greedy",
            policy="edf",
            admission="drop-farthest-deadline",
        )
        assert res.buffers == {
            "capacity": 1,
            "admission": "drop-farthest-deadline",
        }


# --------------------------------------------------------------------- #
# Over the wire: ca + capacity through a live server
# --------------------------------------------------------------------- #


class TestOverHTTP:
    @pytest.fixture(scope="class")
    def client(self):
        from repro.client import ReproClient
        from repro.server import ReproServer

        srv = ReproServer(port=0, jobs=1).start_in_thread()
        try:
            with ReproClient(srv.url) as c:
                yield c
        finally:
            srv.shutdown()

    def test_ca_is_a_served_cell(self, client):
        assert ("line", "buffered", "ca") in set(client.cells())

    def test_loopback_matches_local(self, client, inst):
        capped = inst.with_buffer_capacity(1)
        local = api.solve(capped, "buffered", "ca")
        remote = client.solve(capped, "buffered", "ca")
        assert remote.schedule == local.schedule
        assert remote.delivered == local.delivered
        assert remote.buffers == local.buffers == {
            "capacity": 1,
            "admission": DEFAULT_ADMISSION,
        }

    def test_capacity_survives_the_wire(self, client, inst):
        # bounded simulate over the wire: overflow drops must match local
        capped = inst.with_buffer_capacity(0)
        local = api.solve(capped, "buffered", "greedy", policy="edf")
        remote = client.solve(capped, "buffered", "greedy", policy="edf")
        assert remote.delivered == local.delivered
        assert remote.buffers == local.buffers


# --------------------------------------------------------------------- #
# The deprecation shim
# --------------------------------------------------------------------- #


class TestDbflShim:
    @pytest.fixture
    def warn_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEPRECATIONS", raising=False)

    def test_kwarg_warns_and_matches_instance_capacity(self, inst, warn_mode):
        with pytest.warns(ReproDeprecationWarning, match="buffer_capacity"):
            old = dbfl(inst, buffer_capacity=1)
        new = dbfl(inst.with_buffer_capacity(1))
        assert old.schedule == new.schedule
        assert old.delivered_ids == new.delivered_ids

    def test_kwarg_raises_under_escalation(self, inst):
        # conftest exports REPRO_DEPRECATIONS=error
        with pytest.raises(ReproDeprecationWarning):
            dbfl(inst, buffer_capacity=1)

    def test_unbounded_call_is_silent(self, inst):
        dbfl(inst)  # would raise under escalation if it warned
