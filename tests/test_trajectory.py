"""Unit tests for trajectories."""

import pytest

from repro.core.message import Message
from repro.core.trajectory import Trajectory, buffered_trajectory, bufferless_trajectory


def msg(s=2, d=6, r=1, dl=10, i=7):
    return Message(i, s, d, r, dl)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="crosses no link"):
            Trajectory(0, 2, ())

    def test_rejects_nonincreasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(0, 2, (3, 3))
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(0, 2, (3, 2))

    def test_basic_accessors(self):
        t = Trajectory(0, 2, (1, 2, 5, 6))
        assert t.dest == 6
        assert t.depart == 1
        assert t.arrive == 7
        assert t.span == 4


class TestBufferlessClassification:
    def test_straight_line_is_bufferless(self):
        t = Trajectory(0, 2, (3, 4, 5, 6))
        assert t.bufferless
        assert t.total_wait == 0

    def test_staircase_is_buffered(self):
        t = Trajectory(0, 2, (1, 2, 5, 6))
        assert not t.bufferless
        assert t.total_wait == 2

    def test_single_hop_always_bufferless(self):
        assert Trajectory(0, 2, (9,)).bufferless


class TestScanLines:
    def test_alpha_of_straight_line(self):
        t = bufferless_trajectory(msg(), alpha=1)
        assert t.alpha == 1 and t.final_alpha == 1

    def test_final_alpha_of_staircase(self):
        # depart node 2 at t=1, wait 3 steps at node 4, finish at node 6
        t = Trajectory(0, 2, (1, 2, 6, 7))
        assert t.alpha == 1  # first hop on line 2 - 1
        assert t.final_alpha == 5 - 7  # last hop crosses (5,6) at time 7


class TestEdges:
    def test_diagonal_edges(self):
        t = Trajectory(0, 2, (1, 2, 5, 6))
        assert list(t.diagonal_edges()) == [(2, 1), (3, 2), (4, 5), (5, 6)]

    def test_waits(self):
        t = Trajectory(0, 2, (1, 2, 5, 6))
        assert t.waits() == [(4, 3, 5)]

    def test_node_at(self):
        t = Trajectory(0, 2, (1, 2, 5, 6))
        assert t.node_at(0) is None
        assert t.node_at(1) == 2
        assert t.node_at(2) == 3
        assert t.node_at(3) == 4
        assert t.node_at(4) == 4  # waiting in node 4's buffer
        assert t.node_at(5) == 4
        assert t.node_at(6) == 5
        assert t.node_at(7) == 6
        assert t.node_at(8) is None


class TestFactories:
    def test_bufferless_by_alpha_and_depart_agree(self):
        m = msg()
        assert bufferless_trajectory(m, alpha=0) == bufferless_trajectory(m, depart=2)

    def test_bufferless_requires_exactly_one_selector(self):
        with pytest.raises(ValueError, match="exactly one"):
            bufferless_trajectory(msg())
        with pytest.raises(ValueError, match="exactly one"):
            bufferless_trajectory(msg(), alpha=0, depart=2)

    def test_bufferless_rejects_line_outside_window(self):
        with pytest.raises(ValueError, match="outside"):
            bufferless_trajectory(msg(), alpha=100)

    def test_bufferless_satisfies_message(self):
        m = msg()
        for alpha in range(m.alpha_min, m.alpha_max + 1):
            assert bufferless_trajectory(m, alpha).satisfies(m)

    def test_buffered_factory_validates(self):
        m = msg()
        t = buffered_trajectory(m, (1, 3, 5, 9))
        assert t.satisfies(m)
        with pytest.raises(ValueError, match="legally deliver"):
            buffered_trajectory(m, (0, 3, 5, 9))  # departs before release
        with pytest.raises(ValueError, match="legally deliver"):
            buffered_trajectory(m, (1, 3, 5, 10))  # arrives past deadline
        with pytest.raises(ValueError, match="legally deliver"):
            buffered_trajectory(m, (1, 3, 5))  # wrong span

    def test_satisfies_checks_identity(self):
        t = bufferless_trajectory(msg(), alpha=0)
        assert not t.satisfies(msg(i=8))


class TestTransforms:
    def test_translate(self):
        t = Trajectory(0, 2, (1, 2, 5, 6)).translated(dnode=1, dtime=10)
        assert t.source == 3
        assert t.crossings == (11, 12, 15, 16)

    def test_with_id(self):
        assert Trajectory(0, 2, (1,)).with_id(9).message_id == 9
