"""Tests for the baseline schedulers."""

import numpy as np
import pytest

from repro.baselines import (
    EDFPolicy,
    FCFSPolicy,
    MinLaxityPolicy,
    NearestDestPolicy,
    edf_bufferless,
    first_fit,
    lui_zaks_feasible,
    min_laxity_first,
    random_assignment,
)
from repro.core.bfl import bfl
from repro.network.simulator import simulate
from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered, opt_bufferless

from .conftest import random_lr_instance


ALL_BUFFERLESS = [first_fit, edf_bufferless, min_laxity_first]
ALL_POLICIES = [EDFPolicy, FCFSPolicy, MinLaxityPolicy, NearestDestPolicy]


class TestBufferlessBaselines:
    @pytest.mark.parametrize("baseline", ALL_BUFFERLESS)
    def test_valid_schedules(self, baseline):
        rng = np.random.default_rng(10)
        for _ in range(10):
            inst = random_lr_instance(rng)
            validate_schedule(inst, baseline(inst), require_bufferless=True)

    @pytest.mark.parametrize("baseline", ALL_BUFFERLESS)
    def test_rejects_rl(self, baseline):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            baseline(inst)

    def test_random_assignment_valid_and_seeded(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        inst = random_lr_instance(np.random.default_rng(4), k_hi=8)
        a = random_assignment(inst, rng_a)
        b = random_assignment(inst, rng_b)
        validate_schedule(inst, a, require_bufferless=True)
        assert a.delivered_ids == b.delivered_ids

    @pytest.mark.parametrize("baseline", ALL_BUFFERLESS)
    def test_never_exceeds_optimum(self, baseline):
        rng = np.random.default_rng(11)
        for _ in range(8):
            inst = random_lr_instance(rng, k_hi=7, max_slack=4)
            assert baseline(inst).throughput <= opt_bufferless(inst).throughput

    def test_first_fit_can_lose_to_bfl(self):
        # long-first arrival order hurts first-fit; BFL is order-free
        inst = make_instance(10, [(0, 8, 0, 8), (0, 4, 1, 5), (4, 8, 1, 9)])
        assert first_fit(inst).throughput <= bfl(inst).throughput

    def test_skips_infeasible(self):
        inst = make_instance(8, [(0, 6, 0, 3)])
        for baseline in ALL_BUFFERLESS:
            assert baseline(inst).throughput == 0


class TestBufferedPolicies:
    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_valid_buffered_schedules(self, policy_cls):
        rng = np.random.default_rng(12)
        for _ in range(8):
            inst = random_lr_instance(rng)
            res = simulate(inst, policy_cls())
            validate_schedule(inst, res.schedule)

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_never_exceeds_buffered_optimum(self, policy_cls):
        rng = np.random.default_rng(13)
        for _ in range(6):
            inst = random_lr_instance(rng, k_hi=6, max_slack=4)
            res = simulate(inst, policy_cls())
            assert res.throughput <= opt_buffered(inst).throughput

    def test_edf_delivers_single_message(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        assert simulate(inst, EDFPolicy()).throughput == 1

    def test_policies_differ_under_contention(self):
        # EDF favours the urgent packet, FCFS the old one
        inst = make_instance(
            6,
            [
                (0, 4, 0, 20),  # relaxed, released first
                (1, 4, 1, 5),  # urgent (slack 1)
            ],
        )
        edf = simulate(inst, EDFPolicy())
        assert edf.throughput == 2  # EDF keeps both alive


class TestLuiZaks:
    def test_requires_static(self):
        inst = make_instance(6, [(0, 2, 1, 5)])
        with pytest.raises(ValueError, match="static"):
            lui_zaks_feasible(inst)

    def test_feasible_set_fully_routed(self):
        inst = make_instance(8, [(0, 3, 0, 6), (2, 6, 0, 7), (1, 5, 0, 9)])
        schedule = lui_zaks_feasible(inst)
        assert schedule is not None
        assert schedule.throughput == 3
        validate_schedule(inst, schedule)

    def test_infeasible_returns_none(self):
        # two zero-slack messages needing the same link at the same step
        inst = make_instance(4, [(0, 3, 0, 3), (0, 3, 0, 3)])
        assert lui_zaks_feasible(inst) is None

    def test_absolute_deadline_edf_is_not_the_right_greedy(self):
        """Concrete witness that 'closest deadline' must mean least laxity:
        message 4 (6->11, deadline 5) has zero laxity and must pre-empt
        message 2 (6->8, deadline 3) at node 6 even though 2's absolute
        deadline is earlier."""
        inst = make_instance(
            12,
            [
                (9, 10, 0, 6),
                (8, 9, 0, 1),
                (6, 8, 0, 3),
                (5, 6, 0, 3),
                (6, 11, 0, 5),
                (2, 10, 0, 8),
            ],
        )
        assert opt_buffered(inst).throughput == 6
        assert simulate(inst, EDFPolicy()).throughput < 6
        assert lui_zaks_feasible(inst) is not None

    @pytest.mark.parametrize("seed", range(15))
    def test_greedy_matches_exact_feasibility(self, seed):
        """Whenever the exact solver routes everything, so must the greedy
        (the Lui–Zaks theorem for static sets)."""
        rng = np.random.default_rng(9000 + seed)
        inst = random_lr_instance(rng, max_release=0, k_hi=6, max_slack=5)
        all_fit = opt_buffered(inst).throughput == len(inst)
        greedy = lui_zaks_feasible(inst)
        if all_fit:
            assert greedy is not None
        if greedy is not None:
            assert all_fit
