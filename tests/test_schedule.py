"""Unit tests for Schedule."""

import pytest

from repro.core.schedule import ConflictError, Schedule
from repro.core.trajectory import Trajectory


def straight(mid, source, depart, span):
    return Trajectory(mid, source, tuple(range(depart, depart + span)))


class TestConstruction:
    def test_empty(self):
        s = Schedule()
        assert s.throughput == 0 and len(s) == 0
        assert s.bufferless

    def test_detects_edge_conflict(self):
        a = straight(0, 0, 0, 4)  # edges (0,0),(1,1),(2,2),(3,3)
        b = straight(1, 2, 2, 3)  # edges (2,2),(3,3),(4,4)
        with pytest.raises(ConflictError) as exc:
            Schedule((a, b))
        assert exc.value.edge == (2, 2)

    def test_allows_shared_endpoint(self):
        # a arrives at node 3 at time 3; b departs node 3 at time 3
        a = straight(0, 0, 0, 3)
        b = straight(1, 3, 3, 2)
        s = Schedule((a, b))
        assert s.throughput == 2

    def test_allows_parallel_lines(self):
        a = straight(0, 0, 0, 4)
        b = straight(1, 0, 1, 4)
        assert Schedule((a, b)).throughput == 2

    def test_rejects_duplicate_message(self):
        with pytest.raises(ValueError, match="twice"):
            Schedule((straight(0, 0, 0, 2), straight(0, 5, 9, 2)))

    def test_riser_sharing_is_legal(self):
        # both wait inside node 2's buffer over the same steps
        a = Trajectory(0, 1, (0, 5))
        b = Trajectory(1, 1, (1, 6))
        s = Schedule((a, b))
        assert s.total_wait == 8


class TestAccessors:
    def test_membership_and_lookup(self):
        s = Schedule((straight(3, 0, 0, 2),))
        assert 3 in s and 4 not in s
        assert s[3].depart == 0
        with pytest.raises(KeyError):
            s[4]

    def test_delivered_ids(self):
        s = Schedule((straight(1, 0, 0, 2), straight(2, 4, 0, 2)))
        assert s.delivered_ids == frozenset({1, 2})

    def test_edge_owner(self):
        s = Schedule((straight(1, 0, 5, 2),))
        assert s.edge_owner() == {(0, 5): 1, (1, 6): 1}

    def test_delivery_lines(self):
        s = Schedule((straight(1, 0, 0, 3),))  # final hop crosses (2,3) at t=2
        assert s.delivery_lines() == {1: 0}

    def test_bufferless_flag(self):
        assert Schedule((straight(0, 0, 0, 3),)).bufferless
        assert not Schedule((Trajectory(0, 0, (0, 4)),)).bufferless


class TestTransforms:
    def test_extended_with_revalidates(self):
        s = Schedule((straight(0, 0, 0, 4),))
        with pytest.raises(ConflictError):
            s.extended_with(straight(1, 2, 2, 3))
        s2 = s.extended_with(straight(1, 0, 1, 4))
        assert s2.throughput == 2

    def test_without(self):
        s = Schedule((straight(0, 0, 0, 2), straight(1, 4, 0, 2)))
        assert s.without(0).delivered_ids == frozenset({1})

    def test_merged_with(self):
        a = Schedule((straight(0, 0, 0, 2),))
        b = Schedule((straight(1, 4, 0, 2),))
        assert a.merged_with(b).throughput == 2

    def test_translated(self):
        s = Schedule((straight(0, 0, 0, 2),)).translated(dnode=2, dtime=3)
        assert s[0].source == 2 and s[0].depart == 3


class TestBufferOccupancy:
    def test_no_buffering(self):
        s = Schedule((straight(0, 0, 0, 4),))
        assert s.max_buffer_occupancy() == {}

    def test_peak_occupancy(self):
        # three messages all wait in node 1's buffer with overlapping stays
        a = Trajectory(0, 0, (0, 10))  # in buffer of node 1 during [1, 10)
        b = Trajectory(1, 0, (1, 11))  # [2, 11)
        c = Trajectory(2, 0, (2, 12))  # [3, 12)
        s = Schedule((a, b, c))
        assert s.max_buffer_occupancy() == {1: 3}

    def test_disjoint_stays_do_not_stack(self):
        a = Trajectory(0, 0, (0, 3))  # node 1 during [1, 3)
        b = Trajectory(1, 0, (4, 8))  # node 1 during [5, 8)
        assert Schedule((a, b)).max_buffer_occupancy() == {1: 1}
