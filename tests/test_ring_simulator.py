"""Tests for ring simulation on the unified topology-aware simulator."""

import numpy as np
import pytest

from repro._deprecation import ReproDeprecationWarning
from repro.baselines import EDFPolicy, FCFSPolicy, MinLaxityPolicy
from repro.network import simulate
from repro.network.packet import Packet, PacketStatus
from repro.topology.ring import RingInstance, RingMessage
from repro.workloads.rings import random_ring_instance, ring_hotspot


class TestRingPacket:
    """The generic Packet handles modular ring routing via next_node."""

    def test_wrapping_lifecycle(self):
        p = Packet(RingMessage(0, 4, 1, 0, 10, n=5))
        p.status = PacketStatus.IN_NETWORK
        assert p.remaining_hops() == 2
        p.record_hop(0, next_node=(4 + 1) % 5)
        assert p.node == 0  # wrapped
        p.record_hop(1, next_node=1)
        assert p.status is PacketStatus.DELIVERED

    def test_laxity(self):
        p = Packet(RingMessage(0, 0, 3, 0, 6, n=5))
        assert p.laxity(0) == 3
        assert p.can_meet_deadline(3) and not p.can_meet_deadline(4)


class TestRingSimulation:
    def test_single_message_straight(self):
        inst = RingInstance(5, (RingMessage(0, 3, 1, 2, 10, n=5),))
        res = simulate(inst, EDFPolicy())
        assert res.delivered_ids == {0}
        traj = res.schedule.trajectories[0]
        assert traj.depart == 2
        # edges wrap past node 0
        assert [v for v, _ in traj.edges()] == [3, 4, 0]

    def test_contention_forces_buffering_or_drop(self):
        # two packets fight for link 0 at the same moment; slack lets the
        # loser wait one step
        inst = RingInstance(
            4,
            (
                RingMessage(0, 0, 2, 0, 3, n=4),
                RingMessage(1, 0, 2, 0, 3, n=4),
            ),
        )
        res = simulate(inst, EDFPolicy())
        assert res.throughput == 2
        # the loser waits at its source and departs one step later
        departs = sorted(t.depart for t in res.schedule.trajectories)
        assert departs == [0, 1]

    def test_infeasible_dropped(self):
        inst = RingInstance(5, (RingMessage(0, 0, 3, 0, 2, n=5),))
        res = simulate(inst, EDFPolicy())
        assert res.dropped_ids == {0}

    @pytest.mark.parametrize("policy_cls", [EDFPolicy, MinLaxityPolicy, FCFSPolicy])
    def test_valid_schedules_random(self, policy_cls):
        rng = np.random.default_rng(5)
        for _ in range(8):
            inst = random_ring_instance(rng, n=8, k=10)
            res = simulate(inst, policy_cls())
            # RingSchedule construction verifies per-(link, step) capacity
            assert res.delivered_ids | res.dropped_ids == {m.id for m in inst}

    def test_bounded_by_feasible_count(self):
        rng = np.random.default_rng(6)
        inst = random_ring_instance(rng, n=8, k=12)
        res = simulate(inst, MinLaxityPolicy())
        assert res.throughput <= sum(1 for m in inst if m.feasible)

    def test_buffered_policy_can_beat_bufferless_greedy(self):
        """Over many hotspot draws, buffered LLF should at least once beat
        the bufferless exact optimum's *greedy* (sanity that buffers help
        on rings, mirroring Section 4)."""
        rng = np.random.default_rng(7)
        from repro.topology.ring import ring_bfl

        wins = 0
        for _ in range(10):
            inst = ring_hotspot(rng, n=8, k=15, max_slack=3)
            buffered = simulate(inst, MinLaxityPolicy()).throughput
            bufferless = ring_bfl(inst).throughput
            if buffered > bufferless:
                wins += 1
        assert wins >= 1

    def test_buffer_capacity_zero(self):
        rng = np.random.default_rng(8)
        inst = random_ring_instance(rng, n=8, k=12, max_slack=4)
        res = simulate(inst, EDFPolicy(), buffer_capacity=0)
        # with zero intermediate buffering every delivered packet is straight
        for traj in res.schedule.trajectories:
            assert traj.arrive - traj.depart == traj.span

    def test_negative_capacity_rejected(self):
        from repro.network.simulator import LinearNetworkSimulator

        inst = RingInstance(4, ())
        with pytest.raises(ValueError):
            LinearNetworkSimulator(inst, EDFPolicy(), buffer_capacity=-1)

    def test_stats_consistency(self):
        rng = np.random.default_rng(9)
        inst = random_ring_instance(rng, n=8, k=10)
        res = simulate(inst, EDFPolicy())
        assert res.stats.delivered == res.throughput
        assert res.stats.delivered + res.stats.dropped == len(inst)


class TestDeprecatedAliases:
    """The legacy ring-simulator entrypoints still work, but warn."""

    def test_simulate_ring_warns_and_matches(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEPRECATIONS", raising=False)
        from repro.network.ring_simulator import simulate_ring

        rng = np.random.default_rng(10)
        inst = random_ring_instance(rng, n=8, k=10)
        with pytest.warns(ReproDeprecationWarning):
            legacy = simulate_ring(inst, EDFPolicy())
        new = simulate(inst, EDFPolicy())
        assert legacy.delivered_ids == new.delivered_ids
        assert legacy.schedule.trajectories == new.schedule.trajectories

    def test_ring_network_simulator_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEPRECATIONS", raising=False)
        from repro.network.ring_simulator import RingNetworkSimulator

        inst = RingInstance(5, (RingMessage(0, 3, 1, 2, 10, n=5),))
        with pytest.warns(ReproDeprecationWarning):
            sim = RingNetworkSimulator(inst, EDFPolicy())
        res = sim.run()
        assert res.delivered_ids == {0}

    def test_simulate_ring_raises_under_env(self):
        # conftest sets REPRO_DEPRECATIONS=error for the whole suite
        from repro.network.ring_simulator import simulate_ring

        inst = RingInstance(5, (RingMessage(0, 3, 1, 2, 10, n=5),))
        with pytest.raises(ReproDeprecationWarning):
            simulate_ring(inst, EDFPolicy())
