"""Edge-case and stress tests across modules."""

import numpy as np
import pytest

from repro.core.bfl import bfl
from repro.core.bfl_fast import bfl_fast
from repro.core.dbfl import dbfl
from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered, opt_bufferless


class TestExtremeWindows:
    def test_huge_slack_without_clipping_is_fine(self):
        """The sweep jumps gaps, so slack magnitude must not matter."""
        inst = make_instance(6, [(0, 3, 0, 10_000), (1, 4, 5, 9_000)])
        schedule = bfl(inst)
        assert schedule.throughput == 2
        assert bfl_fast(inst).delivered_ids == schedule.delivered_ids

    def test_huge_release_times(self):
        inst = make_instance(6, [(0, 3, 100_000, 100_005)])
        schedule = bfl(inst)
        assert schedule.throughput == 1
        assert schedule[0].depart == 100_000

    def test_minimal_network(self):
        inst = make_instance(2, [(0, 1, 0, 1)])
        assert bfl(inst).throughput == 1
        assert opt_buffered(inst).throughput == 1
        assert dbfl(inst).throughput == 1

    def test_full_span_message(self):
        n = 30
        inst = make_instance(n, [(0, n - 1, 0, n - 1)])
        assert bfl(inst).throughput == 1

    def test_zero_slack_everything(self):
        """All-zero-slack instances have one line per message; buffering is
        provably useless (laxity 0 everywhere)."""
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(4, 10))
            msgs = []
            for i in range(int(rng.integers(2, 7))):
                s = int(rng.integers(0, n - 1))
                d = int(rng.integers(s + 1, n))
                r = int(rng.integers(0, 5))
                msgs.append(Message(i, s, d, r, r + (d - s)))
            inst = Instance(n, tuple(msgs))
            assert opt_buffered(inst).throughput == opt_bufferless(inst).throughput


class TestManyIdenticalMessages:
    def test_flood_from_one_source(self):
        """50 identical single-hop messages with generous slack all fit,
        one per line."""
        inst = make_instance(2, [(0, 1, 0, 60)] * 50)
        assert bfl(inst).throughput == 50
        assert dbfl(inst).throughput == 50

    def test_flood_with_insufficient_slack(self):
        # 10 identical messages, only 5 usable lines each
        inst = make_instance(2, [(0, 1, 0, 5)] * 10)
        schedule = bfl(inst)
        assert schedule.throughput == 5
        assert opt_bufferless(inst).throughput == 5
        # buffering cannot conjure link capacity
        assert opt_buffered(inst).throughput == 5

    def test_simulator_flood_matches_bfl(self):
        inst = make_instance(3, [(0, 2, 0, 12)] * 8)
        assert dbfl(inst).delivered_ids == bfl(inst).delivered_ids


class TestChainsAndPipelines:
    def test_perfect_pipeline(self):
        """Back-to-back unit messages hop-synchronised along the line:
        node i sends to i+1 at time i — all on one scan line."""
        n = 10
        rows = [(i, i + 1, i, i + 1) for i in range(n - 1)]
        inst = make_instance(n, rows)
        schedule = bfl(inst)
        assert schedule.throughput == n - 1
        assert len({t.final_alpha for t in schedule}) == 1  # same line

    def test_counterflow_is_free(self):
        """Interleaved LR traffic on consecutive lines saturates the link
        without a single drop."""
        inst = make_instance(4, [(0, 3, t, t + 3) for t in range(10)])
        assert bfl(inst).throughput == 10


class TestSolverCorners:
    def test_exact_on_single_edge_saturation(self):
        # horizon 4 -> at most 4 crossings of the lone link
        inst = make_instance(2, [(0, 1, 0, 4)] * 9)
        assert opt_bufferless(inst).throughput == 4

    def test_exact_buffered_all_waiting(self):
        """Messages forced to queue: 3 sources feeding one column."""
        inst = make_instance(
            4,
            [
                (0, 3, 0, 9),
                (1, 3, 0, 9),
                (2, 3, 0, 9),
            ],
        )
        res = opt_buffered(inst)
        assert res.throughput == 3
        validate_schedule(inst, res.schedule)

    def test_bnb_matches_on_pathological_containment(self):
        """Nested segments sharing a right endpoint (the containment rule's
        home turf)."""
        from repro.exact import opt_bufferless_bnb

        rows = [(i, 6, i, 6) for i in range(5)]  # all end at node 6, slack 0
        inst = make_instance(8, rows)
        assert (
            opt_bufferless(inst).throughput
            == opt_bufferless_bnb(inst).throughput
            == 1
        )
        # BFL picks the innermost (largest source)
        schedule = bfl(inst)
        assert schedule.delivered_ids == {4}


class TestDbflTiming:
    def test_release_at_last_possible_moment(self):
        """A packet released exactly at its only viable departure time."""
        inst = make_instance(5, [(1, 4, 7, 10)])  # slack 0, departs at 7
        res = dbfl(inst)
        assert res.delivered_ids == {0}
        assert res.schedule[0].depart == 7

    def test_contained_late_release_preempts(self):
        """Two zero-slack messages share line 0; the nearest-destination
        rule prefers the contained late-release message even though the
        long one departs first — and D-BFL, having already launched the
        long message, still drops it in favour of the contained one."""
        inst = make_instance(
            6,
            [
                (0, 5, 0, 5),  # would occupy line 0 end to end
                (2, 4, 2, 4),  # contained segment: wins the line
            ],
        )
        central = bfl(inst)
        distributed = dbfl(inst)
        assert central.delivered_ids == distributed.delivered_ids == {1}
