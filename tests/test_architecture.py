"""Architecture contracts: the import graph and the docs stay honest.

Two machine-checked invariants of the topology refactor:

* **Import contract** — ``repro.core`` and ``repro.network`` are
  shape-generic: they may reach the ``repro.topology`` *registry*
  (lazily, inside functions), but never import ``repro.mesh`` or a
  topology-specific module (``repro.topology.ring``/``.mesh``/…)
  directly.  The deprecated alias shims are the only exemptions — their
  entire job is to delegate into the new home.
* **Doc sync** — the dispatch table in ``docs/api.md`` lists exactly the
  cells of the live ``api.DISPATCH`` matrix.
"""

import ast
import re
from pathlib import Path

import pytest

from repro import api

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
DOCS = Path(__file__).resolve().parent.parent / "docs"

#: Modules core/network must never import (topology-specific homes).
FORBIDDEN_PREFIXES = (
    "repro.mesh",
    "repro.topology.line",
    "repro.topology.ring",
    "repro.topology.ring_exact",
    "repro.topology.mesh",
    "repro.topology.mesh_exact",
    "repro.topology.solvers",
)

#: Deprecated alias shims whose whole purpose is delegating to the new home.
SHIM_EXEMPT = {
    "repro.core.ring_bfl",
    "repro.network.ring",
    "repro.network.ring_simulator",
}


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve(module: str, node: ast.ImportFrom) -> str:
    """The absolute module an ImportFrom targets."""
    if node.level == 0:
        return node.module or ""
    base = module.split(".")
    # importing module is a plain module (not a package __init__), so its
    # package is base[:-1]; each extra level strips one more component
    package = base[:-1] if not (SRC.parent / Path(*base) / "__init__.py").exists() else base
    anchor = package[: len(package) - (node.level - 1)]
    return ".".join(anchor + ([node.module] if node.module else []))


def _imported_modules(path: Path) -> list[tuple[str, int]]:
    """Every module this file imports (absolute names), with line numbers."""
    module = _module_name(path)
    tree = ast.parse(path.read_text())
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend((alias.name, node.lineno) for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve(module, node)
            out.append((target, node.lineno))
            # `from repro import topology` imports the submodule too
            for alias in node.names:
                out.append((f"{target}.{alias.name}", node.lineno))
    return out


def _layer_files(layer: str) -> list[Path]:
    return sorted((SRC / layer).glob("*.py"))


class TestImportContract:
    @pytest.mark.parametrize("layer", ["core", "network"])
    def test_no_topology_specific_imports(self, layer):
        violations = []
        for path in _layer_files(layer):
            module = _module_name(path)
            if module in SHIM_EXEMPT:
                continue
            for target, lineno in _imported_modules(path):
                if any(
                    target == p or target.startswith(p + ".")
                    for p in FORBIDDEN_PREFIXES
                ):
                    violations.append(f"{module}:{lineno} imports {target}")
        assert not violations, (
            "core/network must stay shape-generic; reach shapes through the "
            "repro.topology registry instead:\n" + "\n".join(violations)
        )

    @pytest.mark.parametrize("layer", ["core", "network"])
    def test_topology_package_only_imported_lazily(self, layer):
        """Non-shim core/network modules may use the registry, but only via
        function-level imports — no module-level dependency cycle."""
        violations = []
        for path in _layer_files(layer):
            module = _module_name(path)
            if module in SHIM_EXEMPT:
                continue
            tree = ast.parse(path.read_text())
            for node in tree.body:  # module level only
                if isinstance(node, ast.ImportFrom):
                    target = _resolve(module, node)
                    names = {a.name for a in node.names}
                    if target == "repro.topology" or (
                        target == "repro" and "topology" in names
                    ):
                        violations.append(f"{module}:{node.lineno}")
                elif isinstance(node, ast.Import):
                    if any(
                        a.name.startswith("repro.topology") for a in node.names
                    ):
                        violations.append(f"{module}:{node.lineno}")
        assert not violations, (
            "repro.topology must be imported lazily (inside functions) from "
            "core/network:\n" + "\n".join(violations)
        )

    def test_shims_are_the_only_legacy_homes(self):
        """The exemption list stays tight: every exempt module still exists
        and actually warns (is a shim, not live code)."""
        for name in SHIM_EXEMPT:
            path = SRC.parent / Path(*name.split(".")).with_suffix(".py")
            assert path.exists(), name
            text = path.read_text()
            assert "topology" in text, f"{name} no longer delegates; unexempt it"


DISPATCH_ROW = re.compile(
    r"^\|\s*`(?P<topology>\w+)`\s*\|\s*`(?P<regime>\w+)`\s*\|\s*`(?P<method>\w+)`\s*\|"
)


class TestDocSync:
    def _doc_cells(self):
        cells = set()
        for line in (DOCS / "api.md").read_text().splitlines():
            m = DISPATCH_ROW.match(line)
            if m:
                cells.add((m["topology"], m["regime"], m["method"]))
        return cells

    def test_api_md_table_matches_live_dispatch(self):
        live = {
            (topo, regime, method)
            for (topo, regime), methods in api.DISPATCH.items()
            for method in methods
        }
        doc = self._doc_cells()
        assert doc == live, (
            f"docs/api.md dispatch table out of sync: "
            f"missing={sorted(live - doc)} stale={sorted(doc - live)}"
        )

    def test_doc_table_is_nonempty(self):
        assert len(self._doc_cells()) >= 18

    def test_doc_table_lists_the_ca_family(self):
        """The constant-approximation family is documented, not just
        registered: the dispatch table must carry its cell and the model
        docs must explain the bounded-buffer dimension it targets."""
        assert ("line", "buffered", "ca") in self._doc_cells()
        api_md = (DOCS / "api.md").read_text()
        assert "buffer_capacity" in api_md and "admission" in api_md
        arch = (DOCS / "architecture.md").read_text()
        assert "## Bounded buffers" in arch
