"""Property-based tests (hypothesis) for the core model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfl import bfl
from repro.core.geometry import Segment, segment_on_line, segments_on_line
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.schedule import Schedule
from repro.core.trajectory import bufferless_trajectory
from repro.core.validate import schedule_problems

from .conftest import lr_instances, lr_messages


class TestMessageProperties:
    @given(lr_messages())
    def test_slack_window_consistency(self, m: Message):
        """The three derived quantities describe one window consistently."""
        assert m.slack == m.alpha_max - m.alpha_min
        assert m.latest_departure - m.release == m.slack
        assert m.deadline - m.earliest_arrival == m.slack

    @given(lr_messages(), st.integers(-40, 40))
    def test_relevance_matches_departure_window(self, m: Message, alpha: int):
        if m.relevant_to(alpha):
            depart = m.departure_for_alpha(alpha)
            assert m.release <= depart <= m.latest_departure
        else:
            depart = m.departure_for_alpha(alpha)
            assert depart < m.release or depart > m.latest_departure

    @given(lr_messages(), st.integers(2, 6), st.integers(0, 9))
    def test_translation_group(self, m: Message, dn: int, dt: int):
        back = m.translated(dn, dt).translated(-dn, 0)
        assert back.source == m.source and back.dest == m.dest
        assert back.release == m.release + dt

    @given(lr_messages(), st.integers(0, 20))
    def test_clip_slack_keeps_window_prefix(self, m: Message, cap: int):
        c = m.clipped_slack(cap)
        assert c.slack == min(m.slack, cap)
        assert c.alpha_max == m.alpha_max  # earliest departure unchanged
        assert c.alpha_min >= m.alpha_min

    @given(lr_messages())
    def test_mirror_preserves_timing(self, m: Message):
        mm = m.mirrored(12)
        assert (mm.release, mm.deadline, mm.span, mm.slack) == (
            m.release,
            m.deadline,
            m.span,
            m.slack,
        )


class TestTrajectoryProperties:
    @given(lr_messages())
    def test_every_window_line_yields_satisfying_trajectory(self, m: Message):
        for alpha in range(m.alpha_min, m.alpha_max + 1):
            traj = bufferless_trajectory(m, alpha)
            assert traj.satisfies(m)
            assert traj.bufferless
            assert traj.alpha == traj.final_alpha == alpha

    @given(lr_messages())
    def test_edges_are_consecutive_diagonals(self, m: Message):
        traj = bufferless_trajectory(m, m.alpha_max)
        edges = list(traj.diagonal_edges())
        assert len(edges) == m.span
        for (v1, t1), (v2, t2) in zip(edges, edges[1:]):
            assert v2 == v1 + 1 and t2 == t1 + 1


class TestSegmentProperties:
    @given(lr_messages(), lr_messages(), st.integers(-30, 30))
    def test_overlap_symmetry(self, a: Message, b: Message, alpha: int):
        sa = segment_on_line(a, alpha)
        sb = segment_on_line(b, alpha)
        if sa is not None and sb is not None:
            assert sa.overlaps(sb) == sb.overlaps(sa)

    @given(st.lists(lr_messages(), max_size=8), st.integers(-30, 30))
    def test_segments_on_line_sorted_by_greedy_key(self, msgs, alpha):
        segs = segments_on_line(msgs, alpha)
        keys = [s.sort_key for s in segs]
        assert keys == sorted(keys)

    @given(lr_messages(), st.integers(-30, 30))
    def test_segment_times_match_message_window(self, m: Message, alpha: int):
        seg = segment_on_line(m, alpha)
        if seg is not None:
            assert m.release <= seg.depart
            assert seg.arrive <= m.deadline


class TestScheduleProperties:
    @settings(max_examples=60)
    @given(lr_instances())
    def test_bfl_output_always_valid(self, inst: Instance):
        schedule = bfl(inst)
        assert schedule_problems(inst, schedule, require_bufferless=True) == []

    @settings(max_examples=60)
    @given(lr_instances())
    def test_bfl_deterministic(self, inst: Instance):
        a = bfl(inst)
        b = bfl(inst)
        assert a.delivered_ids == b.delivered_ids
        assert a.delivery_lines() == b.delivery_lines()

    @settings(max_examples=60)
    @given(lr_instances())
    def test_bfl_schedules_every_lone_message(self, inst: Instance):
        """Any feasible message alone on its span... at minimum, BFL never
        returns an empty schedule when a feasible message exists."""
        feasible = [m for m in inst if m.feasible]
        schedule = bfl(inst)
        if feasible:
            assert schedule.throughput >= 1
        assert schedule.throughput <= len(feasible)

    @settings(max_examples=40)
    @given(lr_instances(max_messages=6, max_slack=4))
    def test_edge_ownership_partition(self, inst: Instance):
        """Each diagonal edge has exactly one owner; owners' trajectories
        really cross it."""
        schedule = bfl(inst)
        owner = schedule.edge_owner()
        for traj in schedule:
            for edge in traj.diagonal_edges():
                assert owner[edge] == traj.message_id
        assert len(owner) == sum(t.span for t in schedule)

    @settings(max_examples=40)
    @given(lr_instances(max_messages=6))
    def test_schedule_without_then_extend_roundtrip(self, inst: Instance):
        schedule = bfl(inst)
        if schedule.throughput == 0:
            return
        first = next(iter(schedule))
        reduced = schedule.without(first.message_id)
        restored = reduced.extended_with(first)
        assert restored.delivered_ids == schedule.delivered_ids


class TestMirrorDecomposition:
    @settings(max_examples=40)
    @given(lr_instances(max_messages=6))
    def test_mirrored_instance_schedules_identically(self, inst: Instance):
        """Scheduling is symmetric under reflection: BFL on the mirrored
        instance delivers a set of equal size."""
        mirrored = inst.mirrored().mirrored()  # identity, sanity
        assert mirrored.messages == inst.messages
        # reflect to RL and back through split_directions
        rl = inst.mirrored()
        lr_again = rl.mirrored()
        assert bfl(lr_again).throughput == bfl(inst).throughput
