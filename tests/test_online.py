"""Tests for the online streaming scheduler subsystem (``repro.online``).

The load-bearing guarantee (ISSUE acceptance criterion): on streams where
every message shares one release time, ``online_bfl``'s replan-at-arrival
admission coincides with the offline scan-line BFL kernel, so Theorem 3.2
applies verbatim and the online throughput is at least half of OPT_BL.
The property test below checks both facts — exact coincidence with
``bfl_fast`` and the 1/2 bound against the branch-and-bound optimum —
over 200+ seeded random instances.
"""

import numpy as np
import pytest

from repro.core.bfl_fast import bfl_fast
from repro.exact import opt_bufferless_bnb
from repro.network.faults import random_fault_plan
from repro.online import (
    GREEDY_POLICIES,
    ONLINE_POLICIES,
    Decision,
    StreamResult,
    arrival_stream,
    online_bfl,
    online_dbfl,
    online_greedy,
    run_online,
)
from repro.workloads import general_instance


def _single_release(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 13))
    k = int(rng.integers(1, 10))
    return general_instance(rng, n=n, k=k, max_release=0, max_slack=6)


def _streamed(seed: int, **kw):
    rng = np.random.default_rng(seed)
    return general_instance(
        rng, n=int(rng.integers(6, 14)), k=int(rng.integers(2, 14)), **kw
    )


class TestSingleReleaseCoincidence:
    """Thm 3.2 transfers: one release time => online admission == offline BFL."""

    @pytest.mark.parametrize("batch", range(8))
    def test_matches_bfl_and_half_opt(self, batch):
        for seed in range(batch * 25, (batch + 1) * 25):  # 8 * 25 = 200 instances
            inst = _single_release(seed)
            run = online_bfl(inst)
            offline = bfl_fast(inst)
            assigned = sorted(
                (t.message_id, t.final_alpha) for t in run.schedule.trajectories
            )
            expected = sorted(
                (t.message_id, t.final_alpha) for t in offline.trajectories
            )
            assert assigned == expected, f"seed {seed}: diverged from offline BFL"
            opt = opt_bufferless_bnb(inst).optimal
            assert 2 * run.throughput >= opt, f"seed {seed}: broke the 1/2 bound"

    def test_empty_instance(self):
        inst = general_instance(np.random.default_rng(0), n=6, k=0)
        run = online_bfl(inst)
        assert run.throughput == 0 and not run.decisions


class TestStreamSemantics:
    def test_arrival_stream_is_sorted_and_complete(self):
        inst = _streamed(7, max_release=9)
        batches = list(arrival_stream(inst))
        times = [t for t, _ in batches]
        assert times == sorted(times) and len(set(times)) == len(times)
        assert sum(len(b) for _, b in batches) == len(inst.messages)

    def test_every_message_gets_exactly_one_decision(self):
        for seed in range(30):
            inst = _streamed(seed, max_release=10)
            run = online_bfl(inst)
            decided = sorted(d.message_id for d in run.decisions)
            assert decided == sorted(m.id for m in inst.messages)
            assert set(run.delivered_ids) | set(run.dropped) == set(decided)
            assert not set(run.delivered_ids) & set(run.dropped)

    def test_decisions_are_causal(self):
        inst = _streamed(3, max_release=12)
        by_id = {m.id: m for m in inst.messages}
        for d in online_bfl(inst).decisions:
            assert d.time >= by_id[d.message_id].release
            if d.kind == "launch":
                m = by_id[d.message_id]
                assert d.time == m.source - d.alpha
                assert m.dest - d.alpha <= m.deadline

    def test_launch_times_respect_revealed_information_only(self):
        # A launch decision at time t may only depend on messages released
        # <= t: rerunning on the truncated instance reproduces the prefix.
        inst = _streamed(11, max_release=8)
        full = online_bfl(inst)
        cut = 4
        revealed = tuple(m for m in inst.messages if m.release <= cut)
        truncated = online_bfl(type(inst)(inst.n, revealed))
        prefix = [d for d in full.decisions if d.time <= cut]
        assert prefix == [d for d in truncated.decisions if d.time <= cut]


class TestFaultedRuns:
    """Acceptance criterion: FaultPlan runs complete and split drop blame."""

    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_completes_and_attributes_drops(self, policy):
        for seed in range(12):
            inst = _streamed(seed, max_release=6)
            plan = random_fault_plan(
                np.random.default_rng(seed + 100),
                inst,
                drop_rate=0.25,
                link_failures=1,
                node_stalls=1,
            )
            run = run_online(inst, policy, faults=plan)
            fault = set(run.fault_dropped_ids)
            policy_drops = set(run.policy_dropped_ids)
            assert not fault & policy_drops
            assert fault | policy_drops == set(run.dropped)
            assert len(run.delivered_ids) + len(run.dropped) == len(inst.messages)
            for d in run.decisions:
                if d.kind == "drop":
                    assert d.reason in ("policy", "fault")

    def test_fault_replay_is_deterministic(self):
        inst = _streamed(5, max_release=6)
        plan = random_fault_plan(
            np.random.default_rng(42), inst, drop_rate=0.3, link_failures=2
        )
        assert online_bfl(inst, faults=plan) == online_bfl(inst, faults=plan)

    def test_faultless_run_has_no_fault_drops(self):
        inst = _streamed(9, max_release=8)
        run = online_bfl(inst)
        assert not run.fault_dropped_ids
        assert run.stats["blocked_launches"] == 0


class TestSimulatedPolicies:
    def test_dbfl_matches_simulator(self):
        from repro.core.dbfl import dbfl

        inst = _streamed(2, max_release=8)
        run = online_dbfl(inst)
        assert run.schedule == dbfl(inst).schedule
        assert run.policy == "dbfl"

    @pytest.mark.parametrize("name", GREEDY_POLICIES)
    def test_greedy_policies_are_valid(self, name):
        inst = _streamed(6, max_release=8)
        run = online_greedy(inst, policy=name)
        assert isinstance(run, StreamResult)
        assert run.policy == f"greedy:{name}"
        assert len(run.delivered_ids) + len(run.dropped) == len(inst.messages)

    def test_greedy_unknown_policy(self):
        inst = _streamed(6, max_release=8)
        with pytest.raises(ValueError, match="policy"):
            online_greedy(inst, policy="psychic")

    def test_run_online_dispatch(self):
        inst = _streamed(8, max_release=8)
        assert run_online(inst).policy == "bfl"
        assert run_online(inst, "dbfl").policy == "dbfl"
        with pytest.raises(ValueError, match="bfl"):
            run_online(inst, "clairvoyant")


class TestDecisionRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            Decision(1, "teleport", 0)
        with pytest.raises(ValueError):
            Decision(1, "drop", 0, reason="gremlins")
        with pytest.raises(ValueError):
            Decision(1, "drop", 0)  # drops need a reason
        d = Decision(1, "launch", 3, alpha=-2)
        assert d.to_dict() == {"message_id": 1, "kind": "launch", "time": 3, "alpha": -2}

    def test_stream_result_is_frozen(self):
        inst = _single_release(1)
        run = online_bfl(inst)
        with pytest.raises(AttributeError):
            run.policy = "other"
