"""Client hardening: the retry classification table, the circuit
breaker, and exactly-once retries via idempotency keys.

The retry rule under test: connect-level failures (the request provably
never left) are always retried; ambiguous mid-request failures only for
idempotent requests; HTTP responses are answers — only 429 is retried,
honouring Retry-After.
"""

import http.client
import socket

import pytest

from repro.client import CircuitBreaker, ClientStream, ReproClient, classify_failure
from repro.errors import CircuitOpenError, ServerError, ServerOverloaded


class TestClassificationTable:
    @pytest.mark.parametrize(
        "exc",
        [
            ConnectionRefusedError("refused"),
            socket.gaierror("no such host"),
            http.client.CannotSendRequest(),
        ],
    )
    def test_connect_level_always_retriable(self, exc):
        assert classify_failure(exc, idempotent=False)
        assert classify_failure(exc, idempotent=True)

    @pytest.mark.parametrize(
        "exc",
        [
            http.client.RemoteDisconnected("gone"),
            http.client.BadStatusLine("garbage"),
            ConnectionResetError("reset"),
            BrokenPipeError("pipe"),
            TimeoutError("timed out"),
        ],
    )
    def test_ambiguous_retriable_only_if_idempotent(self, exc):
        assert classify_failure(exc, idempotent=True)
        assert not classify_failure(exc, idempotent=False)

    def test_everything_else_is_an_answer(self):
        assert not classify_failure(ValueError("nope"), idempotent=True)
        assert not classify_failure(KeyError("nope"), idempotent=True)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=3, cooldown=10.0, clock=lambda: clock[0])
        assert br.state == "closed"
        for _ in range(2):
            br.record_failure()
        br.allow()  # still closed at 2/3
        br.record_failure()
        assert br.state == "open"
        with pytest.raises(CircuitOpenError) as exc_info:
            br.allow()
        assert exc_info.value.retry_after == pytest.approx(10.0)
        clock[0] = 5.0
        with pytest.raises(CircuitOpenError) as exc_info:
            br.allow()
        assert exc_info.value.retry_after == pytest.approx(5.0)
        clock[0] = 10.0
        assert br.state == "half-open"
        br.allow()  # the probe slot

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=10.0, clock=lambda: clock[0])
        br.record_failure()
        assert br.state == "open"
        clock[0] = 10.0
        br.allow()
        br.record_failure()  # probe failed: open again, fresh cooldown
        assert br.state == "open"
        with pytest.raises(CircuitOpenError):
            br.allow()
        clock[0] = 20.0
        br.allow()
        br.record_success()  # probe succeeded: closed, counter reset
        assert br.state == "closed"

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(threshold=2, cooldown=1.0)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # never two consecutive

    def test_breaker_guards_client_calls(self):
        # Pre-open the breaker: the client must fail fast without even
        # trying the (dead) address.
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=60.0, clock=lambda: clock[0])
        br.record_failure()
        with ReproClient("http://127.0.0.1:1", retries=0, breaker=br) as client:
            with pytest.raises(CircuitOpenError):
                client.health()

    def test_consecutive_connect_failures_trip_the_breaker(self):
        br = CircuitBreaker(threshold=2, cooldown=60.0)
        with ReproClient(
            "http://127.0.0.1:1", retries=0, backoff=0.0, breaker=br
        ) as client:
            with pytest.raises(ServerError):
                client.health()
            with pytest.raises(ServerError):
                client.health()
            assert br.state == "open"
            with pytest.raises(CircuitOpenError):
                client.health()


def _line(seed=42):
    import numpy as np

    from repro.workloads import general_instance

    return general_instance(
        np.random.default_rng(seed), n=8, k=16, max_release=8, max_slack=6
    )


class TestAgainstLiveServer:
    @pytest.fixture()
    def server(self):
        from repro.server import ReproServer

        srv = ReproServer(port=0, jobs=1).start_in_thread()
        yield srv
        srv.shutdown()

    def test_non_idempotent_ambiguous_failure_is_not_retried(self, server):
        with ReproClient(server.url, retries=3, backoff=0.0) as client:
            calls = []

            def _explode(*args, **kwargs):
                calls.append(1)
                raise http.client.RemoteDisconnected("mid-request")

            client._once = _explode
            with pytest.raises(ServerError, match="not idempotent"):
                client._call("POST", "/v1/streams", {"n": 8}, idempotent=False)
            assert len(calls) == 1  # one attempt, no retry

    def test_429_is_retried_with_hint_then_typed(self):
        from repro.server import ReproServer

        srv = ReproServer(port=0, jobs=1, max_pending=0).start_in_thread()
        try:
            with ReproClient(srv.url, retries=2, backoff=0.01) as client:
                attempts = []
                original = client._once

                def _counting(*args, **kwargs):
                    out = original(*args, **kwargs)
                    attempts.append(out[0])
                    return out

                client._once = _counting
                with pytest.raises(ServerOverloaded) as exc_info:
                    client.solve(_line(), "bufferless", "bfl")
                assert attempts == [429, 429, 429]  # initial + 2 retries
                assert exc_info.value.retry_after is not None
        finally:
            srv.shutdown()

    def test_idempotent_solve_retry_is_exactly_once(self, server):
        inst = _line()
        with ReproClient(server.url) as client:
            first = client.solve(
                inst, "bufferless", "bfl", idempotency_key="retry-me"
            )
            served_before = client.health()["served"]
            second = client.solve(
                inst, "bufferless", "bfl", idempotency_key="retry-me"
            )
            served_after = client.health()["served"]
        # The second request replayed the cached response: nothing new
        # was solved, and the answer (request block included) is
        # byte-identical.
        assert served_after == served_before
        assert first.to_dict() == second.to_dict()

    def test_distinct_keys_solve_independently(self, server):
        inst = _line()
        with ReproClient(server.url) as client:
            client.solve(inst, "bufferless", "bfl", idempotency_key="k1")
            served_before = client.health()["served"]
            client.solve(inst, "bufferless", "bfl", idempotency_key="k2")
            assert client.health()["served"] == served_before + 1

    def test_stream_feed_retry_is_exactly_once(self, server):
        rows = [
            {"id": i, "source": 0, "dest": 4, "release": i, "deadline": i + 8}
            for i in range(6)
        ]
        with ReproClient(server.url) as client:
            stream = client.open_stream(n=8, policy="bfl")
            first = stream.feed(rows[:3])
            # Simulate a lost response: re-send the same batch with the
            # same seq by resetting the client-side cursor.
            stream.seq = 0
            again = stream.feed(rows[:3])
            assert [d.to_dict() for d in again] == [d.to_dict() for d in first]
            status = client._call("GET", f"/v1/streams/{stream.stream_id}")
            assert status["batches"] == 1  # not re-applied
            assert status["fed"] == 3
            stream.abandon()

    def test_resume_stream_continues_seq(self, server):
        rows = [
            {"id": i, "source": 0, "dest": 4, "release": i, "deadline": i + 8}
            for i in range(6)
        ]
        with ReproClient(server.url) as client:
            stream = client.open_stream(n=8, policy="bfl")
            fed = stream.feed(rows[:3])
            resumed = client.resume_stream(stream.stream_id)
            assert resumed.seq == 1
            assert resumed.frontier == stream.frontier
            assert [d.to_dict() for d in resumed.decisions()] == [
                d.to_dict() for d in fed
            ]
            resumed.feed(rows[3:])
            assert resumed.seq == 2
            resumed.close()
            assert isinstance(resumed, ClientStream)
