"""Network fault injection (repro.network.faults) and experiment E15."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EDFPolicy
from repro.core.dbfl import dbfl
from repro.core.instance import Instance
from repro.core.message import Message
from repro.network import (
    FaultPlan,
    LinkFailure,
    NodeStall,
    random_fault_plan,
    simulate,
)
from repro.workloads import saturated_instance

from .conftest import random_lr_instance


def _single(n, source, dest, release, deadline):
    return Instance(n, (Message(0, source, dest, release, deadline),))


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="link"):
            LinkFailure(-1, 0, 1)
        with pytest.raises(ValueError, match="window"):
            LinkFailure(0, 5, 2)
        with pytest.raises(ValueError, match="node"):
            NodeStall(-2, 0, 1)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)

    def test_active(self):
        assert not FaultPlan().active
        assert FaultPlan(drop_rate=0.1).active
        assert FaultPlan(link_failures=(LinkFailure(0, 0, 1),)).active
        assert FaultPlan(node_stalls=(NodeStall(1, 2, 3),)).active

    def test_window_queries(self):
        plan = FaultPlan(
            link_failures=(LinkFailure(2, 3, 6),),
            node_stalls=(NodeStall(4, 0, 2),),
        )
        assert plan.link_down(2, 3) and plan.link_down(2, 5)
        assert not plan.link_down(2, 6) and not plan.link_down(1, 4)
        assert plan.node_stalled(4, 1) and not plan.node_stalled(4, 2)
        assert plan.sending_blocked(2, 4) and plan.sending_blocked(4, 0)
        assert not plan.sending_blocked(3, 4)

    def test_simulator_rejects_non_plan(self):
        inst = _single(3, 0, 2, 0, 5)
        with pytest.raises(TypeError, match="FaultPlan"):
            simulate(inst, EDFPolicy(), faults={"drop_rate": 0.5})

    def test_random_plan_deterministic(self):
        inst = _single(8, 0, 7, 0, 20)
        kwargs = dict(drop_rate=0.1, link_failures=2, node_stalls=1)
        p1 = random_fault_plan(np.random.default_rng(5), inst, **kwargs)
        p2 = random_fault_plan(np.random.default_rng(5), inst, **kwargs)
        assert p1 == p2
        assert p1.active and len(p1.link_failures) == 2 and len(p1.node_stalls) == 1


class TestFaultedSimulation:
    def test_inert_plan_is_a_clean_run(self):
        rng = np.random.default_rng(7)
        inst = saturated_instance(rng, n=12, load=1.5, horizon=20)
        clean = simulate(inst, EDFPolicy())
        faulted = simulate(inst, EDFPolicy(), faults=FaultPlan())
        assert faulted.delivered_ids == clean.delivered_ids
        assert faulted.stats.fault_drops == 0

    def test_faulted_run_is_deterministic(self):
        rng = np.random.default_rng(9)
        inst = saturated_instance(rng, n=12, load=1.5, horizon=20)
        plan = FaultPlan(
            link_failures=(LinkFailure(3, 2, 6),),
            node_stalls=(NodeStall(5, 0, 4),),
            drop_rate=0.2,
            drop_seed=42,
        )
        r1 = dbfl(inst, faults=plan)
        r2 = dbfl(inst, faults=plan)
        assert r1.delivered_ids == r2.delivered_ids
        assert r1.stats.fault_drops == r2.stats.fault_drops

    def test_link_failure_kills_tight_message(self):
        # zero slack: any blocked step makes the deadline unreachable
        inst = _single(3, 0, 2, 0, 2)
        assert simulate(inst, EDFPolicy()).throughput == 1
        plan = FaultPlan(link_failures=(LinkFailure(0, 0, 1),))
        res = simulate(inst, EDFPolicy(), faults=plan)
        assert res.throughput == 0
        assert res.stats.link_down_blocks >= 1

    def test_node_stall_delays_but_slack_absorbs_it(self):
        inst = _single(3, 0, 2, 0, 3)  # one step of slack
        plan = FaultPlan(node_stalls=(NodeStall(0, 0, 1),))
        res = simulate(inst, EDFPolicy(), faults=plan)
        assert res.throughput == 1
        assert res.stats.stall_blocks >= 1

    def test_full_drop_rate_delivers_nothing(self):
        inst = _single(3, 0, 2, 0, 10)
        res = simulate(inst, EDFPolicy(), faults=FaultPlan(drop_rate=1.0))
        assert res.throughput == 0
        assert res.stats.fault_drops == 1  # lost on its first crossing

    def test_every_message_accounted_for(self):
        rng = np.random.default_rng(3)
        inst = saturated_instance(rng, n=12, load=2.0, horizon=20)
        plan = random_fault_plan(
            rng, inst, drop_rate=0.15, link_failures=2, node_stalls=1
        )
        res = simulate(inst, EDFPolicy(), faults=plan)
        assert res.delivered_ids | res.dropped_ids == {m.id for m in inst}
        assert res.delivered_ids.isdisjoint(res.dropped_ids)


@pytest.mark.slow
class TestFaultStress:
    def test_random_plans_never_break_invariants(self):
        rng = np.random.default_rng(2024)
        for _ in range(30):
            inst = random_lr_instance(rng, n_lo=5, n_hi=12, k_hi=12)
            plan = random_fault_plan(
                rng,
                inst,
                drop_rate=float(rng.uniform(0, 0.4)),
                link_failures=int(rng.integers(0, 3)),
                node_stalls=int(rng.integers(0, 3)),
            )
            for result in (
                simulate(inst, EDFPolicy(), faults=plan),
                dbfl(inst, faults=plan),
            ):
                # the simulator validates delivered trajectories internally;
                # here we check conservation and replay determinism
                assert result.delivered_ids | result.dropped_ids == {
                    m.id for m in inst
                }
            again = simulate(inst, EDFPolicy(), faults=plan)
            assert again.delivered_ids == simulate(
                inst, EDFPolicy(), faults=plan
            ).delivered_ids


class TestE15:
    def test_table_shape_and_degradation(self):
        from repro.experiments import e15_faults
        from repro.experiments.base import RunConfig

        table = e15_faults.run(RunConfig(seed=4, trials=2))
        assert len(table.rows) == len(e15_faults.DROP_RATES)
        for row in table.rows:
            for col in e15_faults.COLUMNS:
                assert 0.0 <= row[col] <= 1.0
        # the clean reference column does not depend on the drop rate sweep
        # direction; the heavily faulted end must sit below its own clean run
        worst = table.rows[-1]
        assert worst["dbfl"] <= worst["dbfl_clean"]

    def test_registered_in_cli_registry(self):
        from repro.experiments import ALL

        assert "e15" in ALL
        assert "fault" in ALL["e15"].DESCRIPTION.lower()
