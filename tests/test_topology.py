"""Tests for the repro.topology layer: registry, dispatch, decomposition,
golden facade/legacy parity, and ring fault attribution."""

import warnings

import numpy as np
import pytest

from repro import api, topology
from repro._deprecation import ReproDeprecationWarning
from repro.baselines import EDFPolicy
from repro.core.bfl_fast import bfl_fast
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.network import simulate
from repro.network.faults import FaultPlan, LinkFailure
from repro.topology import (
    Line,
    Mesh,
    Ring,
    RingInstance,
    RingMessage,
    get_topology,
    topology_names,
    topology_of,
)
from repro.workloads.meshes import random_mesh_instance
from repro.workloads.rings import random_ring_instance


@pytest.fixture
def quiet_legacy(monkeypatch):
    """Let deprecated aliases run silently inside golden comparisons."""
    monkeypatch.delenv("REPRO_DEPRECATIONS", raising=False)


def _mixed_line_instance(rng, n=10, k=8):
    """A line instance with messages in both directions."""
    msgs = []
    for i in range(k):
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        while b == a:
            b = int(rng.integers(0, n))
        r = int(rng.integers(0, 6))
        msgs.append(Message(i, a, b, r, r + abs(b - a) + int(rng.integers(0, 5))))
    return Instance(n, tuple(msgs))


class TestRegistry:
    def test_names(self):
        assert set(topology_names()) == {"line", "ring", "mesh"}

    def test_get_topology_returns_singletons(self):
        assert isinstance(get_topology("line"), Line)
        assert isinstance(get_topology("ring"), Ring)
        assert isinstance(get_topology("mesh"), Mesh)
        assert get_topology("ring") is get_topology("ring")

    def test_get_topology_unknown(self):
        with pytest.raises(ValueError, match="torus"):
            get_topology("torus")

    def test_topology_of_reads_the_attribute(self):
        rng = np.random.default_rng(0)
        assert topology_of(_mixed_line_instance(rng)).name == "line"
        assert topology_of(random_ring_instance(rng, n=6, k=4)).name == "ring"
        assert (
            topology_of(random_mesh_instance(rng, rows=3, cols=3, k=3)).name == "mesh"
        )

    def test_dispatch_matrix_shape(self):
        matrix = topology.dispatch_matrix()
        assert matrix[("line", "bufferless")] == ("exact", "bfl", "greedy")
        assert "exact" in matrix[("ring", "bufferless")]
        assert "greedy" in matrix[("mesh", "bufferless")]
        # api.DISPATCH is a snapshot of the same registry
        assert api.DISPATCH == matrix

    def test_solver_for_resolves_lazy_strings(self):
        fn = topology.solver_for("ring", "bufferless", "bfl")
        assert callable(fn)

    def test_solver_for_unknown_cell(self):
        with pytest.raises(KeyError):
            topology.solver_for("mesh", "online", "bfl")

    def test_register_solver_roundtrip(self):
        sentinel = lambda instance, opts: None  # noqa: E731
        topology.register_solver("line", "bufferless", "_test_tmp", sentinel)
        try:
            assert topology.solver_for("line", "bufferless", "_test_tmp") is sentinel
            assert "_test_tmp" in topology.dispatch_matrix()[("line", "bufferless")]
        finally:
            topology.unregister_solver("line", "bufferless", "_test_tmp")
        assert "_test_tmp" not in topology.dispatch_matrix()[("line", "bufferless")]


class TestInstanceTopologyField:
    def test_default_is_line(self):
        inst = Instance(4, (Message(0, 0, 2, 0, 5),))
        assert inst.topology == "line"

    def test_canonical_form_unchanged_for_line(self):
        """Line cache keys must not change across the refactor."""
        inst = Instance(4, (Message(0, 0, 2, 0, 5),))
        form = inst.canonical_form()
        assert len(form) == 2  # no topology component appended

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="torus"):
            Instance(4, (Message(0, 0, 2, 0, 5),), "torus")


class TestGoldenRingExactParity:
    """solve() on rings must be byte-identical to the legacy entrypoints."""

    @pytest.mark.parametrize("seed_block", range(4))
    def test_facade_matches_legacy_exact(self, seed_block, quiet_legacy):
        from repro.exact.ring import opt_ring_bufferless

        for seed in range(seed_block * 25, (seed_block + 1) * 25):
            rng = np.random.default_rng(40_000 + seed)
            inst = random_ring_instance(rng, n=6, k=8, max_release=6, max_slack=4)
            via_api = api.solve(inst, "bufferless", "exact")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ReproDeprecationWarning)
                legacy = opt_ring_bufferless(inst)
            assert via_api.schedule == legacy.schedule, seed
            assert via_api.optimal == legacy.optimal
            assert via_api.topology == "ring"

    def test_facade_matches_legacy_ring_bfl(self, quiet_legacy):
        from repro.core.ring_bfl import ring_bfl

        for seed in range(100):
            rng = np.random.default_rng(41_000 + seed)
            inst = random_ring_instance(rng, n=8, k=12)
            via_api = api.solve(inst, "bufferless", "bfl")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ReproDeprecationWarning)
                legacy = ring_bfl(inst)
            assert via_api.schedule == legacy, seed

    def test_facade_matches_legacy_ring_buffered(self, quiet_legacy):
        from repro.exact.ring_buffered import opt_ring_buffered

        for seed in range(8):
            rng = np.random.default_rng(42_000 + seed)
            inst = random_ring_instance(rng, n=5, k=6, max_release=4, max_slack=3)
            via_api = api.solve(inst, "buffered", "exact")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ReproDeprecationWarning)
                legacy = opt_ring_buffered(inst)
            assert via_api.schedule == legacy.schedule, seed
            assert via_api.optimal == legacy.optimal

    def test_facade_matches_legacy_mesh(self, quiet_legacy):
        from repro.exact.mesh import opt_mesh_xy

        for seed in range(10):
            rng = np.random.default_rng(43_000 + seed)
            inst = random_mesh_instance(
                rng, rows=4, cols=4, k=8, max_release=6, max_slack=3
            )
            via_api = api.solve(inst, "bufferless", "exact")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ReproDeprecationWarning)
                legacy = opt_mesh_xy(inst)
            assert via_api.schedule == legacy.schedule, seed
            assert via_api.topology == "mesh"


class TestDecompositionProperties:
    """Every topology's decomposition yields sub-instances that re-validate
    under the shared line machinery (core/validate)."""

    @pytest.mark.parametrize("seed", range(30))
    def test_line_halves_revalidate(self, seed):
        rng = np.random.default_rng(50_000 + seed)
        inst = _mixed_line_instance(rng, n=10, k=10)
        lr, rl_mirrored = Line().decompose(inst)
        assert {m.id for m in lr} | {m.id for m in rl_mirrored} == {
            m.id for m in inst
        }
        for half in (lr, rl_mirrored):
            assert half.topology == "line"
            validate_schedule(half, bfl_fast(half))

    @pytest.mark.parametrize("seed", range(30))
    def test_ring_cut_reduction_revalidates(self, seed):
        rng = np.random.default_rng(51_000 + seed)
        inst = random_ring_instance(rng, n=8, k=12)
        cut = int(rng.integers(0, inst.n))
        line_part, wrapped = Ring().decompose(inst, cut=cut)
        assert isinstance(line_part, Instance) and line_part.topology == "line"
        assert isinstance(wrapped, RingInstance)
        assert {m.id for m in line_part} | {m.id for m in wrapped} == {
            m.id for m in inst
        }
        # span is preserved across the relabeling
        by_id = {m.id: m for m in inst}
        for m in line_part:
            assert m.dest - m.source == by_id[m.id].span
        validate_schedule(line_part, bfl_fast(line_part))

    @pytest.mark.parametrize("seed", range(30))
    def test_mesh_xy_decomposition_revalidates(self, seed):
        rng = np.random.default_rng(52_000 + seed)
        inst = random_mesh_instance(rng, rows=5, cols=5, k=12)
        parts = Mesh().decompose(inst)
        ids = {m.id for m in inst}
        for part in parts:
            assert isinstance(part, Instance) and part.topology == "line"
            assert {m.id for m in part} <= ids
            validate_schedule(part, bfl_fast(part))

    def test_line_mirror_involution(self):
        rng = np.random.default_rng(53_000)
        inst = _mixed_line_instance(rng)
        assert Line().mirror(Line().mirror(inst)) == inst


class TestRingFaultAttribution:
    """Satellite (a): ring fault drops must be blamed on the fault plan,
    not on the scheduling policy."""

    def test_stochastic_drops_attributed_fault(self):
        rng = np.random.default_rng(60_000)
        inst = random_ring_instance(rng, n=8, k=12, max_slack=6)
        plan = FaultPlan(drop_rate=1.0, drop_seed=1)
        res = simulate(inst, EDFPolicy(), faults=plan)
        assert res.throughput == 0
        fault_events = [e for e in res.drop_events if e[2] == "fault"]
        assert fault_events, "expected fault-attributed drops on the ring"
        assert res.stats.fault_drops == len(fault_events)

    def test_dead_link_blocks_ring_traffic(self):
        # the only route 0 -> 2 goes over link 0; kill it for the whole run
        inst = RingInstance(5, (RingMessage(0, 0, 2, 0, 4, n=5),))
        plan = FaultPlan(link_failures=(LinkFailure(0, 0, 50),))
        res = simulate(inst, EDFPolicy(), faults=plan)
        assert res.delivered_ids == frozenset()
        assert res.stats.link_down_blocks > 0
        clean = simulate(inst, EDFPolicy())
        assert clean.delivered_ids == {0}

    def test_online_ring_telemetry_separates_fault_from_policy(self):
        rng = np.random.default_rng(61_000)
        inst = random_ring_instance(rng, n=8, k=10, max_slack=5)
        plan = FaultPlan(drop_rate=0.5, drop_seed=7)
        result = api.solve(
            inst, "online", "greedy", baseline="none", faults=plan
        )
        drops = result.telemetry["drops"]
        assert set(drops) == {"policy", "fault"}
        assert drops["fault"] > 0
        assert drops["policy"] + drops["fault"] + result.delivered == len(inst)


class TestFacadeRingOnline:
    def test_ratio_against_exact_ring_optimum(self):
        rng = np.random.default_rng(62_000)
        inst = random_ring_instance(rng, n=6, k=8, max_release=6, max_slack=4)
        result = api.solve(inst, "online", "greedy", baseline="exact")
        assert result.upper is not None
        assert result.competitive_ratio == pytest.approx(
            1.0 if result.upper == 0 else result.delivered / result.upper
        )

    def test_serialization_carries_topology(self):
        import json

        rng = np.random.default_rng(63_000)
        inst = random_ring_instance(rng, n=6, k=6)
        payload = api.solve(inst, "bufferless", "bfl").to_dict()
        assert payload["topology"] == "ring"
        assert payload["version"] == api.ScheduleResult.SCHEMA_VERSION
        decoded = json.loads(json.dumps(payload))
        assert len(decoded["schedule"]["trajectories"]) == payload["delivered"]
