"""Fault-injection tests for the serving tier (the ``chaos`` marker).

The fast subset runs in tier 1: typed 504s under stalled drainers,
malformed-payload handling, the slow-loris read-timeout, worker kills in
the process pool, shutdown accounting, and the kill -9 acceptance test
(a real ``repro serve`` subprocess SIGKILLed mid-stream and recovered
from its journal).  ``REPRO_CHAOS_FULL=1`` unlocks the full smoke
schedule (the one behind ``repro chaos --smoke``).
"""

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.chaos import ChaosPlan
from repro.chaos.plan import KILL_GATE_ENV
from repro.client import ReproClient
from repro.engine import Engine
from repro.errors import DeadlineExceeded, ServerShutdownError
from repro.online import run_online
from repro.server import ReproServer, SolveQueue
from repro.server.worker import solve_cell
from repro.topology import topology_of
from repro.workloads import general_instance

pytestmark = pytest.mark.chaos


def _line(seed=42, n=8, k=16):
    return general_instance(
        np.random.default_rng(seed), n=n, k=k, max_release=8, max_slack=6
    )


def _doc(inst):
    return topology_of(inst).instance_to_dict(inst)


def _stream_rows(seed, n=8, k=30):
    rng = np.random.default_rng(seed)
    inst = general_instance(rng, n=n, k=k, max_release=k // 2, max_slack=6)
    return [
        {
            "id": m.id,
            "source": m.source,
            "dest": m.dest,
            "release": m.release,
            "deadline": m.deadline,
        }
        for m in sorted(inst.messages, key=lambda m: (m.release, m.id))
    ]


class TestChaosPlan:
    def test_stall_coins_are_deterministic(self):
        plan = ChaosPlan(seed=7, stall_rate=0.5, stall_seconds=1.0)
        first = [plan.stall_for(i) for i in range(32)]
        again = [plan.stall_for(i) for i in range(32)]
        assert first == again
        assert 0.0 < np.mean([s > 0 for s in first]) < 1.0

    def test_explicit_batches_override_coins(self):
        plan = ChaosPlan(stall_seconds=2.0, stall_batches=(3,))
        assert plan.stall_for(3) == 2.0
        assert plan.stall_for(4) == 0.0

    def test_env_round_trip(self):
        plan = ChaosPlan(seed=3, stall_rate=1.0, stall_seconds=0.5)
        assert ChaosPlan.from_json(plan.to_json()) == plan
        assert ChaosPlan.from_env(plan.env()) == plan
        assert ChaosPlan.from_env({}) is None


class TestDeadlineChain:
    def test_stalled_drainer_answers_typed_504_before_stall_ends(self):
        plan = ChaosPlan(seed=0, stall_rate=1.0, stall_seconds=2.0)
        srv = ReproServer(port=0, jobs=1, chaos=plan).start_in_thread()
        try:
            with ReproClient(srv.url) as client:
                t0 = time.monotonic()
                with pytest.raises(DeadlineExceeded) as exc_info:
                    client.solve(
                        _line(), "bufferless", "bfl", deadline_ms=300.0
                    )
                elapsed = time.monotonic() - t0
                assert elapsed < 2.0  # the deadline, not the stall, bounds it
                assert exc_info.value.deadline_ms == pytest.approx(300.0)
                assert client.health()["shed_deadline"] >= 1
        finally:
            srv.shutdown()

    def test_default_deadline_applies_server_side(self):
        plan = ChaosPlan(seed=0, stall_rate=1.0, stall_seconds=2.0)
        srv = ReproServer(
            port=0, jobs=1, chaos=plan, default_deadline_ms=250.0
        ).start_in_thread()
        try:
            with ReproClient(srv.url) as client:
                with pytest.raises(DeadlineExceeded):
                    client.solve(_line(), "bufferless", "bfl")
        finally:
            srv.shutdown()

    def test_deadline_untouched_solves_still_succeed(self):
        srv = ReproServer(port=0, jobs=1).start_in_thread()
        try:
            with ReproClient(srv.url) as client:
                result = client.solve(
                    _line(), "bufferless", "bfl", deadline_ms=30_000.0
                )
                assert result.delivered >= 0
        finally:
            srv.shutdown()

    def test_exact_solver_deadline_returns_bounds(self):
        # A deadline-capped exact solve that cannot finish comes back as
        # a typed 504 carrying the certified partial bounds.
        inst = _line(seed=9, n=16, k=40)
        payload = {
            "instance": _doc(inst),
            "regime": "bufferless",
            "method": "exact",
            "_deadline_s": 0.05,
        }
        out = solve_cell(payload)
        if not out["ok"]:  # tiny instances may still finish in time
            err = out["error"]["error"]
            assert err["type"] == "deadline"
            assert "lower" in err["details"]


class TestMalformedPayloads:
    @pytest.fixture()
    def server(self):
        srv = ReproServer(port=0, jobs=1, request_timeout=1.0).start_in_thread()
        yield srv
        srv.shutdown()

    def test_garbage_gets_typed_400(self, server):
        from repro.chaos import send_garbage

        assert send_garbage("127.0.0.1", server.port) == 400

    def test_corrupt_frame_gets_typed_400(self, server):
        from repro.chaos import send_corrupt_frame

        assert send_corrupt_frame("127.0.0.1", server.port) == 400

    def test_truncated_body_is_never_processed(self, server):
        from repro.chaos import send_truncated_body

        status = send_truncated_body("127.0.0.1", server.port, timeout=3.0)
        assert status in (None, 400, 408)
        with ReproClient(server.url) as client:
            assert client.health()["status"] == "ok"

    def test_slow_loris_is_cut_off_with_408(self, server):
        from repro.chaos import slow_loris

        status, held = slow_loris(
            "127.0.0.1", server.port, duration=5.0, drip_interval=0.1
        )
        assert status == 408
        assert held < 5.0
        with ReproClient(server.url) as client:
            assert client.health()["status"] == "ok"


class TestWorkerKill:
    def test_kill_refused_without_gate_and_in_main_process(self):
        inst = _line()
        payload = {
            "instance": _doc(inst),
            "regime": "bufferless",
            "method": "bfl",
            "chaos": {"kill": True},
        }
        os.environ.pop(KILL_GATE_ENV, None)
        out = solve_cell(payload)  # no gate: solves normally
        assert out["ok"]
        os.environ[KILL_GATE_ENV] = "1"
        try:
            out = solve_cell(payload)  # gate set, but MainProcess: refused
            assert out["ok"]
        finally:
            os.environ.pop(KILL_GATE_ENV, None)

    @pytest.mark.timeout(120)
    def test_pool_worker_kill_yields_typed_outcomes(self, monkeypatch):
        monkeypatch.setenv(KILL_GATE_ENV, "1")
        inst = _line()
        good = {"instance": _doc(inst), "regime": "bufferless", "method": "bfl"}
        bad = {**good, "chaos": {"kill": True}}

        async def scenario():
            queue = SolveQueue(Engine(jobs=2), max_pending=8, max_batch=4)
            await queue.start()
            riders = [
                asyncio.create_task(queue.submit(bad, tenant="a")),
                asyncio.create_task(queue.submit(good, tenant="b")),
            ]
            outcomes = await asyncio.gather(*riders, return_exceptions=True)
            counts = await queue.stop()
            return outcomes, counts

        outcomes, counts = asyncio.run(scenario())
        # The killed worker takes the batch down, but every rider gets a
        # raised typed outcome — nobody hangs, nothing is silently lost.
        assert len(outcomes) == 2
        assert all(isinstance(o, Exception) for o in outcomes)
        assert counts["drained"] == 0


class TestShutdownAccounting:
    def test_unjoinable_thread_raises_typed_error(self):
        srv = ReproServer(port=0, jobs=1).start_in_thread()
        real_thread = srv._thread

        class Wedged:
            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        srv._thread = Wedged()
        try:
            with pytest.raises(ServerShutdownError) as exc_info:
                srv.shutdown(timeout=0.1)
            assert exc_info.value.drained >= 0
            assert exc_info.value.abandoned >= 0
        finally:
            srv._thread = real_thread
            srv.shutdown()

    def test_clean_shutdown_reports_counts(self):
        srv = ReproServer(port=0, jobs=1).start_in_thread()
        with ReproClient(srv.url) as client:
            client.solve(_line(), "bufferless", "bfl")
        srv.shutdown()
        assert srv._shutdown_counts == {"drained": 1, "abandoned": 0}


class TestKill9Acceptance:
    """The PR's acceptance test: SIGKILL a journaled server mid-stream,
    restart it, and the recovered prefix is byte-identical — with the
    resumed stream finishing exactly like an uncrashed control."""

    @pytest.mark.timeout(180)
    def test_kill9_midstream_recovers_byte_identical(self, tmp_path):
        from repro.chaos import ServerProcess
        from repro.core.instance import Instance
        from repro.core.message import Message

        rows = _stream_rows(seed=123, n=8, k=30)
        batches = [rows[i : i + 10] for i in range(0, len(rows), 10)]
        srv = ServerProcess(jobs=1, journal=str(tmp_path)).start()
        try:
            with ReproClient(srv.url) as client:
                stream = client.open_stream(n=8, policy="bfl")
                pre_crash = []
                for batch in batches[:2]:
                    pre_crash.extend(d.to_dict() for d in stream.feed(batch))

                srv.kill9()
                recovery_seconds = srv.restart()
                assert recovery_seconds < 30.0

                resumed = client.resume_stream(stream.stream_id)
                assert resumed.seq == 2
                recovered = [d.to_dict() for d in resumed.decisions()]
                assert json.dumps(recovered, sort_keys=True) == json.dumps(
                    pre_crash, sort_keys=True
                )

                for batch in batches[2:]:
                    resumed.feed(batch)
                final = resumed.close()
        finally:
            srv.stop()

        control = run_online(
            Instance(8, tuple(Message(**r) for r in rows)), "bfl"
        )
        assert [d.to_dict() for d in final.decisions] == [
            d.to_dict() for d in control.decisions
        ]


class TestChaosCli:
    def test_chaos_without_smoke_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["chaos"]) == 2
        assert "--smoke" in capsys.readouterr().out


@pytest.mark.slow
@pytest.mark.timeout(600)
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS_FULL"),
    reason="full chaos schedule is gated behind REPRO_CHAOS_FULL=1",
)
def test_full_smoke_schedule(tmp_path):
    from repro.chaos import run_smoke

    payload = run_smoke(seed=0, out=str(tmp_path / "BENCH_PR8.json"))
    assert payload["ok"], payload["invariants"]
    assert payload["recovery"]["prefix_identical"]
    assert payload["deadline"]["typed_504"] == payload["deadline"]["requests"]
