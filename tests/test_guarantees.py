"""Tests for the composed BFL-vs-OPT_B guarantee calculator."""

import numpy as np
import pytest

from repro.analysis.guarantees import Guarantee, bfl_buffered_guarantee
from repro.core.bfl import bfl
from repro.core.instance import Instance, make_instance
from repro.exact import opt_buffered
from repro.workloads import (
    general_instance,
    static_instance,
    uniform_slack_instance,
    uniform_span_instance,
)


class TestStructureDetection:
    def test_uniform_span_gets_factor_four(self):
        rng = np.random.default_rng(0)
        inst = uniform_span_instance(rng, span=3, k=8, max_release=5)
        g = bfl_buffered_guarantee(inst)
        assert g.factor == 4.0
        assert "4.2" in g.theorem

    def test_static_gets_factor_four(self):
        rng = np.random.default_rng(1)
        inst = static_instance(rng, k=8, max_slack=12)
        # ensure it is not accidentally uniform-span/slack
        if inst.uniform_span or inst.uniform_slack:
            pytest.skip("degenerate draw")
        g = bfl_buffered_guarantee(inst)
        assert g.factor == 4.0
        assert "4.3" in g.theorem

    def test_uniform_slack_gets_factor_six(self):
        rng = np.random.default_rng(2)
        inst = uniform_slack_instance(rng, slack=3, k=8, max_release=5)
        if inst.uniform_span or inst.static:
            pytest.skip("degenerate draw")
        g = bfl_buffered_guarantee(inst)
        assert g.factor == 6.0

    def test_general_uses_log_bound(self):
        rng = np.random.default_rng(3)
        inst = general_instance(rng, n=24, k=20, max_release=10, max_slack=10)
        if inst.uniform_span or inst.uniform_slack or inst.static:
            pytest.skip("degenerate draw")
        g = bfl_buffered_guarantee(inst)
        assert "4.4" in g.theorem
        assert g.factor == pytest.approx(2.0 * g.separation)

    def test_picks_smallest_applicable(self):
        # static AND uniform span: factor 4 from either; never the log bound
        inst = make_instance(10, [(0, 3, 0, 9), (4, 7, 0, 5)])
        assert inst.static and inst.uniform_span
        g = bfl_buffered_guarantee(inst)
        assert g.factor == 4.0

    def test_str(self):
        g = Guarantee(4.0, 2.0, "Thm 4.2 (uniform span)")
        assert "OPT_B <= 4" in str(g)


class TestGuaranteeHolds:
    @pytest.mark.parametrize("seed", range(12))
    def test_certified_factor_is_sound(self, seed):
        """OPT_B really is within the certified factor of BFL's throughput."""
        rng = np.random.default_rng(4200 + seed)
        maker = [
            lambda: uniform_slack_instance(rng, n=8, k=7, slack=2, max_release=4),
            lambda: uniform_span_instance(rng, n=8, k=7, span=3, max_release=4, max_slack=3),
            lambda: static_instance(rng, n=8, k=7, max_slack=3),
        ][seed % 3]
        inst = maker()
        g = bfl_buffered_guarantee(inst)
        got = bfl(inst).throughput
        opt_b = opt_buffered(inst).throughput
        if got:
            assert opt_b <= g.factor * got + 1e-9
