"""Tests for metrics, ratio formulas, and table rendering."""

import math

import numpy as np
import pytest

from repro.analysis import (
    Table,
    instance_summary,
    lemma41_bound,
    lemma42_bound,
    lemma43_bound,
    schedule_summary,
    theorem44_lower,
    theorem44_upper,
    throughput_ratio,
)
from repro.core.bfl import bfl
from repro.core.instance import Instance, make_instance
from repro.core.schedule import Schedule
from repro.exact import opt_buffered, opt_bufferless

from .conftest import random_lr_instance


class TestInstanceSummary:
    def test_empty(self):
        s = instance_summary(Instance(6, ()))
        assert s["messages"] == 0 and s["lambda"] == 0

    def test_paper_example(self, paper_example):
        s = instance_summary(paper_example)
        assert s["messages"] == 6
        assert s["max_slack"] == 8
        assert s["max_span"] == 10
        assert s["lambda"] == 6
        assert s["feasible"] == 6

    def test_link_load(self):
        inst = make_instance(3, [(0, 2, 0, 2)])  # 2 hops over 2 links x 3 steps
        s = instance_summary(inst)
        assert s["mean_link_load"] == pytest.approx(2 / (2 * 3))


class TestScheduleSummary:
    def test_empty_schedule(self):
        inst = make_instance(6, [(0, 3, 0, 9)])
        s = schedule_summary(inst, Schedule())
        assert s["delivered"] == 0 and s["dropped"] == 1

    def test_full_delivery(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        sched = bfl(inst)
        s = schedule_summary(inst, sched)
        assert s["delivered"] == 1
        assert s["delivery_ratio"] == 1.0
        assert s["bufferless"] is True
        assert s["mean_latency"] == 3.0
        assert s["mean_slack_used"] == 0.0


class TestRatioFormulas:
    def test_throughput_ratio(self):
        assert throughput_ratio(6, 3) == 2.0
        assert throughput_ratio(0, 0) == 1.0
        assert math.isinf(throughput_ratio(3, 0))

    def test_bounds_monotone_in_lambda(self):
        small = make_instance(8, [(0, 1, 0, 1)])
        # fabricate a larger-lambda instance
        big = make_instance(32, [(0, 16, 0, 32)] * 20)
        assert theorem44_upper(big) >= theorem44_upper(small)
        assert theorem44_lower(big) >= theorem44_lower(small)

    @pytest.mark.parametrize("seed", range(12))
    def test_theorem44_upper_holds_empirically(self, seed):
        rng = np.random.default_rng(9700 + seed)
        inst = random_lr_instance(rng, k_hi=6, max_slack=4)
        opt_b = opt_buffered(inst).throughput
        opt_bl = opt_bufferless(inst).throughput
        assert opt_b <= theorem44_upper(inst) * max(opt_bl, 1) + 1e-9
        # the three lemma bounds as well
        for bound in (lemma41_bound, lemma42_bound, lemma43_bound):
            assert opt_b <= bound(inst) * max(opt_bl, 1) + 1e-9


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_unknown_column_rejected(self):
        t = Table(["a"])
        with pytest.raises(KeyError):
            t.add(b=1)

    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add(name="x", value=1)
        t.add(name="long-name", value=2.5)
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert all(len(l) >= len("name | value") for l in lines[:2])
        assert "2.500" in out

    def test_formatting_rules(self):
        t = Table(["v"])
        t.add(v=None)
        t.add(v=True)
        t.add(v=False)
        out = t.render()
        assert "-" in out and "yes" in out and "no" in out

    def test_title_and_extend(self):
        t = Table(["a"])
        t.extend([{"a": 1}, {"a": 2}])
        out = t.render(title="T")
        assert out.splitlines()[0] == "T"
        assert len(t.rows) == 2
