"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.core.message import Direction
from repro.workloads import (
    general_instance,
    hotspot_instance,
    multimedia_instance,
    saturated_instance,
    session_instance,
    static_instance,
    uniform_slack_instance,
    uniform_span_instance,
)
from repro.workloads.sessions import Session


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGeneral:
    def test_shape_and_feasibility(self):
        inst = general_instance(rng(), n=20, k=30, max_release=10, max_slack=5)
        assert inst.n == 20 and len(inst) == 30
        for m in inst:
            assert m.direction == Direction.LEFT_TO_RIGHT
            assert m.feasible
            assert 0 <= m.release <= 10
            assert 0 <= m.slack <= 5

    def test_deterministic_given_seed(self):
        a = general_instance(rng(5), n=16, k=10)
        b = general_instance(rng(5), n=16, k=10)
        assert a.messages == b.messages

    def test_span_bounds_respected(self):
        inst = general_instance(rng(), n=20, k=50, min_span=3, max_span=5)
        assert all(3 <= m.span <= 5 for m in inst)

    def test_invalid_span_range(self):
        with pytest.raises(ValueError, match="span range"):
            general_instance(rng(), n=4, k=3, min_span=9)

    def test_saturated_exceeds_capacity(self):
        inst = saturated_instance(rng(), n=12, load=2.0, horizon=20)
        demand = sum(m.span for m in inst)
        assert demand >= 2.0 * 11 * 20

    def test_saturated_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            saturated_instance(rng(), load=0)


class TestSpecialFamilies:
    def test_uniform_slack(self):
        inst = uniform_slack_instance(rng(), slack=4, k=15)
        assert inst.uniform_slack
        assert all(m.slack == 4 for m in inst)

    def test_uniform_slack_rejects_negative(self):
        with pytest.raises(ValueError):
            uniform_slack_instance(rng(), slack=-1)

    def test_uniform_span(self):
        inst = uniform_span_instance(rng(), span=5, k=15)
        assert inst.uniform_span
        assert all(m.span == 5 for m in inst)

    def test_uniform_span_must_fit(self):
        with pytest.raises(ValueError):
            uniform_span_instance(rng(), n=4, span=9)

    def test_static(self):
        inst = static_instance(rng(), k=15)
        assert inst.static


class TestSessions:
    def test_explicit_sessions_expand(self):
        sessions = [Session(source=0, dest=4, period=5, slack=2)]
        inst = session_instance(sessions, n=8, horizon=20)
        assert len(inst) == 4  # releases 0, 5, 10, 15
        assert all(m.release % 5 == 0 for m in inst)
        assert all(m.slack == 2 for m in inst)

    def test_phase_offsets(self):
        sessions = [Session(source=0, dest=2, period=4, slack=0, phase=3)]
        inst = session_instance(sessions, n=4, horizon=12)
        assert [m.release for m in inst] == [3, 7, 11]

    def test_random_sessions_need_rng(self):
        with pytest.raises(ValueError, match="rng"):
            session_instance()

    def test_session_validation(self):
        with pytest.raises(ValueError):
            Session(source=3, dest=1, period=5, slack=0)
        with pytest.raises(ValueError):
            Session(source=0, dest=1, period=0, slack=0)


class TestMultimedia:
    def test_class_map_covers_all(self):
        inst, class_of = multimedia_instance(rng(), k=40)
        assert set(class_of) == set(inst.ids)
        assert set(class_of.values()) <= {"audio", "video", "bulk"}

    def test_class_slacks_in_range(self):
        inst, class_of = multimedia_instance(rng(), k=80)
        ranges = {"audio": (0, 2), "video": (2, 8), "bulk": (50, 200)}
        for m in inst:
            lo, hi = ranges[class_of[m.id]]
            assert lo <= m.slack <= hi

    def test_hotspot_destinations_cluster(self):
        inst = hotspot_instance(rng(), n=32, k=50, hotspot=24, width=2)
        assert all(22 <= m.dest <= 26 for m in inst)

    def test_hotspot_validation(self):
        with pytest.raises(ValueError, match="interior"):
            hotspot_instance(rng(), n=8, hotspot=0)
