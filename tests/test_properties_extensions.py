"""Property-based tests for the ring, mesh, and serialization extensions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.ring import ring_bfl
from repro.io import instance_from_dict, instance_to_dict, schedule_from_dict, schedule_to_dict
from repro.core.bfl import bfl
from repro.topology.mesh import MeshInstance, MeshMessage, xy_schedule
from repro.topology.mesh import mesh_schedule_problems
from repro.topology.ring import RingInstance, RingMessage, validate_ring_schedule

from .conftest import lr_instances


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #


@st.composite
def ring_instances(draw, *, n: int = 8, max_messages: int = 8):
    k = draw(st.integers(0, max_messages))
    msgs = []
    for i in range(k):
        s = draw(st.integers(0, n - 1))
        span = draw(st.integers(1, n - 1))
        r = draw(st.integers(0, 8))
        slack = draw(st.integers(0, 6))
        msgs.append(RingMessage(i, s, (s + span) % n, r, r + span + slack, n))
    return RingInstance(n, tuple(msgs))


@st.composite
def mesh_instances(draw, *, rows: int = 4, cols: int = 5, max_messages: int = 8):
    k = draw(st.integers(0, max_messages))
    msgs = []
    for i in range(k):
        src = (draw(st.integers(0, rows - 1)), draw(st.integers(0, cols - 1)))
        dst = (draw(st.integers(0, rows - 1)), draw(st.integers(0, cols - 1)))
        if src == dst:
            dst = ((src[0] + 1) % rows, src[1])
        span = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        r = draw(st.integers(0, 6))
        slack = draw(st.integers(0, 6))
        msgs.append(MeshMessage(i, src, dst, r, r + span + slack))
    return MeshInstance(rows, cols, tuple(msgs))


# --------------------------------------------------------------------- #
# ring properties
# --------------------------------------------------------------------- #


class TestRingProperties:
    @settings(max_examples=60, deadline=None)
    @given(ring_instances())
    def test_ring_bfl_always_valid(self, inst: RingInstance):
        sched = ring_bfl(inst)
        validate_ring_schedule(inst, sched)

    @settings(max_examples=60, deadline=None)
    @given(ring_instances())
    def test_ring_bfl_deterministic(self, inst: RingInstance):
        assert ring_bfl(inst).delivered_ids == ring_bfl(inst).delivered_ids

    @settings(max_examples=60, deadline=None)
    @given(ring_instances())
    def test_ring_helix_consistency(self, inst: RingInstance):
        """Every scheduled trajectory's helix matches its message's formula."""
        for traj in ring_bfl(inst).trajectories:
            m = inst[traj.message_id]
            assert traj.helix == m.helix(traj.depart)
            assert m.release <= traj.depart <= m.latest_departure


# --------------------------------------------------------------------- #
# mesh properties
# --------------------------------------------------------------------- #


class TestMeshProperties:
    @settings(max_examples=50, deadline=None)
    @given(mesh_instances(), st.integers(0, 2))
    def test_xy_schedule_always_valid(self, inst: MeshInstance, conv: int):
        sched = xy_schedule(inst, conversion_delay=conv)
        assert mesh_schedule_problems(inst, sched, conversion_delay=conv) == []

    @settings(max_examples=50, deadline=None)
    @given(mesh_instances())
    def test_conversion_delay_monotone(self, inst: MeshInstance):
        """More conversion cost never delivers more messages."""
        free = xy_schedule(inst, conversion_delay=0).throughput
        costly = xy_schedule(inst, conversion_delay=3).throughput
        assert costly <= free

    @settings(max_examples=50, deadline=None)
    @given(mesh_instances())
    def test_turn_waits_nonnegative_and_consistent(self, inst: MeshInstance):
        sched = xy_schedule(inst, conversion_delay=1)
        for traj in sched.trajectories:
            assert traj.turn_wait >= 0
            if traj.row_leg is not None and traj.col_leg is not None:
                assert traj.col_leg.depart - traj.row_leg.arrive == traj.turn_wait


# --------------------------------------------------------------------- #
# serialization properties
# --------------------------------------------------------------------- #


class TestSerializationProperties:
    @settings(max_examples=60, deadline=None)
    @given(lr_instances())
    def test_instance_roundtrip(self, inst):
        assert instance_from_dict(instance_to_dict(inst)) == inst

    @settings(max_examples=60, deadline=None)
    @given(lr_instances())
    def test_schedule_roundtrip_preserves_lines(self, inst):
        sched = bfl(inst)
        again = schedule_from_dict(schedule_to_dict(sched))
        assert again.delivery_lines() == sched.delivery_lines()
