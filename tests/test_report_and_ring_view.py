"""Tests for the report generator and the ring occupancy view."""

import numpy as np
import pytest

from repro.cli import main
from repro.topology.ring import ring_bfl
from repro.experiments.report import build_report
from repro.topology.ring import RingInstance, RingMessage
from repro.viz.ring_view import ring_gantt
from repro.workloads.rings import random_ring_instance


class TestBuildReport:
    def test_subset(self):
        out = build_report(only=["e1"])
        assert "## E1" in out
        assert "BFL throughput" in out  # summary table included

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            build_report(only=["nope"])

    def test_seed_override(self):
        a = build_report(only=["e2"], seed=7)
        b = build_report(only=["e2"], seed=7)
        # strip the timing line and the solver-cache footnote, which vary
        # run to run (the second run hits the process-wide result cache)
        strip = lambda s: "\n".join(
            l
            for l in s.splitlines()
            if not l.startswith("_(") and not l.startswith("[solver cache:")
        )
        assert strip(a) == strip(b)

    def test_cli_report(self, capsys):
        assert main(["report", "e6"]) == 0
        out = capsys.readouterr().out
        assert "## E6" in out and "half_log_lambda" in out

    def test_cli_report_unknown(self, capsys):
        assert main(["report", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestRingGantt:
    def test_rows_cover_all_links_including_wrap(self):
        inst = RingInstance(5, (RingMessage(0, 3, 1, 0, 10, n=5),))
        sched = ring_bfl(inst)
        out = ring_gantt(inst, sched)
        lines = out.splitlines()
        assert len(lines) == 1 + 5 + 1
        assert any(l.startswith(" 4->0") for l in lines)  # wrap link labelled

    def test_wrapping_message_glyphs(self):
        inst = RingInstance(4, (RingMessage(0, 3, 1, 0, 2, n=4),))
        sched = ring_bfl(inst)
        out = ring_gantt(inst, sched)
        rows = {l.split()[0]: l for l in out.splitlines()[1:-1]}
        assert rows["3->0"].split()[-1].startswith("0")  # link 3 at t=0
        assert "0" in rows["0->1"]  # link 0 at t=1

    def test_utilisation_reported(self):
        rng = np.random.default_rng(0)
        inst = random_ring_instance(rng, n=6, k=6)
        out = ring_gantt(inst, ring_bfl(inst))
        assert "utilisation:" in out

    def test_empty_window_rejected(self):
        inst = RingInstance(4, ())
        from repro.topology.ring import RingSchedule

        with pytest.raises(ValueError, match="empty time window"):
            ring_gantt(inst, RingSchedule(), start=3, end=3)
