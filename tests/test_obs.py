"""Tests for the repro.obs observability subsystem."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.bfl_fast import bfl_fast
from repro.obs.tracer import NULL_SPAN, Tracer
from repro.workloads import general_instance

class TestTracer:
    def test_disabled_is_inert(self):
        tr = Tracer(enabled=False)
        assert tr.span("x") is NULL_SPAN
        tr.count("c")
        tr.gauge("g", 1.0)
        tr.event("e")
        tr.record_span("s", 0.0)
        data = obs.to_dict(tr)
        assert data["spans"] == [] and data["counters"] == {}
        assert data["gauges"] == {} and data["events"] == []

    def test_span_nesting(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner", depth=2):
                pass
        spans = {s.name: s for s in tr.spans}
        assert spans["inner"].parent == spans["outer"].id
        assert spans["outer"].parent is None
        assert spans["inner"].attrs["depth"] == 2
        assert spans["inner"].end >= spans["inner"].start

    def test_record_span_hot_path(self):
        tr = Tracer(enabled=True)
        t0 = time.perf_counter()
        tr.record_span("kernel", t0, n=8)
        (rec,) = tr.spans
        assert rec.name == "kernel" and rec.attrs["n"] == 8

    def test_counters_and_timer(self):
        tr = Tracer(enabled=True)
        tr.count("hits")
        tr.count("hits", 2)
        with tr.timer("phase"):
            pass
        assert tr.counters["hits"] == 3
        assert tr.counters["phase.calls"] == 1
        assert tr.counters["phase.seconds"] >= 0

    def test_counter_delta_merge(self):
        tr = Tracer(enabled=True)
        tr.count("a")
        snap = tr.counters_snapshot()
        tr.count("a")
        tr.count("b", 5)
        delta = tr.counters_since(snap)
        assert delta == {"a": 1, "b": 5}
        other = Tracer(enabled=True)
        other.merge_counts(delta)
        assert other.counters == {"a": 1, "b": 5}

    def test_disabled_call_overhead_smoke(self):
        """The disabled fast path must stay within nanoseconds per call."""
        tr = Tracer(enabled=False)
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            if tr.enabled:
                tr.count("x")
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 5e-6  # generous: even slow CI is ~100x under this

    def test_use_context_manager_isolates(self):
        mine = Tracer(enabled=True)
        with obs.use(mine):
            assert obs.tracer() is mine
        assert obs.tracer() is not mine


class TestInstrumentation:
    def test_bfl_emits_counters(self):
        tr = Tracer(enabled=True)
        inst = general_instance(np.random.default_rng(0), n=12, k=10)
        with obs.use(tr):
            schedule = bfl_fast(inst)
        assert tr.counters["bfl.launches"] == 1
        assert tr.counters["bfl.delivered"] == schedule.throughput
        assert tr.counters["bfl.segments_scanned"] >= schedule.throughput
        (rec,) = [s for s in tr.spans if s.name == "bfl.fast"]
        assert rec.attrs["delivered"] == schedule.throughput

    def test_simulator_emits_counters(self):
        from repro.baselines import EDFPolicy
        from repro.network.simulator import simulate

        tr = Tracer(enabled=True)
        inst = general_instance(np.random.default_rng(1), n=10, k=8)
        with obs.use(tr):
            result = simulate(inst, EDFPolicy())
        assert tr.counters["sim.runs"] == 1
        assert tr.counters["sim.delivered"] == result.throughput
        assert tr.counters["sim.steps"] == result.stats.steps

    def test_exact_solver_emits_counters(self):
        from repro.exact import opt_bufferless, opt_bufferless_bnb

        tr = Tracer(enabled=True)
        inst = general_instance(np.random.default_rng(2), n=8, k=6)
        with obs.use(tr):
            opt_bufferless(inst)
            opt_bufferless_bnb(inst)
        assert tr.counters["exact.milp.solves"] == 1
        assert tr.counters["exact.milp.variables"] > 0
        assert tr.counters["exact.bnb.nodes"] > 0

    def test_cache_emits_layer_hits(self):
        from repro.engine import cache as cache_mod

        tr = Tracer(enabled=True)
        inst = general_instance(np.random.default_rng(3), n=10, k=8)
        old = cache_mod._default
        cache_mod._default = cache_mod.ResultCache(enabled=True)
        try:
            with obs.use(tr):
                cache_mod.cached_bfl(inst)
                cache_mod.cached_bfl(inst)
        finally:
            cache_mod._default = old
        assert tr.counters["cache.misses"] == 1
        assert tr.counters["cache.hits.memory"] == 1


class TestExporters:
    def test_jsonl_schema(self, tmp_path):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            tr.count("c", 2)
            tr.gauge("g", 1.5)
            tr.event("milestone", detail="x")
        manifest = obs.RunManifest.collect("unit test", seed=7)
        path = tmp_path / "t.jsonl"
        obs.to_jsonl(tr, path, manifest=manifest)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "manifest"
        assert lines[0]["seed"] == 7
        types = {l["type"] for l in lines}
        assert {"manifest", "span", "counter", "gauge", "event"} <= types
        span = next(l for l in lines if l["type"] == "span")
        assert {"name", "start", "dur", "id", "pid"} <= set(span)
        counter = next(l for l in lines if l["type"] == "counter")
        assert counter["name"] == "c" and counter["value"] == 2

    def test_report_round_trip(self, tmp_path):
        tr = Tracer(enabled=True)
        tr.record_span("phase.a", time.perf_counter())
        tr.count("cache.hits.memory", 3)
        tr.count("cache.misses", 1)
        tr.count("exact.bnb.nodes", 42)
        path = tmp_path / "t.jsonl"
        obs.to_jsonl(tr, path)
        trace = obs.load_trace(path)
        report = obs.render_report(trace, source=str(path))
        assert "phase.a" in report
        assert "75% hit rate" in report
        assert "exact.bnb.nodes = 42" in report

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"\n')
        with pytest.raises(ValueError):
            obs.load_trace(path)

    def test_dict_export_for_tests(self):
        tr = Tracer(enabled=True)
        tr.count("k", 7)
        data = obs.to_dict(tr)
        assert data["counters"]["k"] == 7


class TestManifest:
    def test_collect_and_finish(self):
        m = obs.RunManifest.collect("cmd", config={"x": 1}, seed=3)
        assert m.command == "cmd" and m.seed == 3 and m.config == {"x": 1}
        assert m.python and m.platform
        m.finish(1.25)
        d = m.to_dict()
        assert d["elapsed_seconds"] == 1.25
        assert obs.RunManifest.from_dict(d).command == "cmd"


class TestEngineObsFlow:
    def test_worker_counters_flow_to_parent(self):
        """Counter deltas from pool workers merge into the parent tracer."""
        from repro.engine.pool import run_tasks

        tr = Tracer(enabled=True)
        rngs = [np.random.SeedSequence(i) for i in range(4)]
        with obs.use(tr):
            results, _ = run_tasks(_traced_cell, [(s,) for s in rngs], jobs=1)
        assert tr.counters["engine.tasks"] == 4
        assert tr.counters["bfl.launches"] == 4


def _traced_cell(seed_seq):
    inst = general_instance(np.random.default_rng(seed_seq), n=10, k=8)
    return bfl_fast(inst).throughput
