"""Unit and behavioural tests for Algorithm BFL (Theorem 3.2)."""

import numpy as np
import pytest

from repro.core.bfl import EDF, LONGEST_FIRST, NEAREST_DEST, bfl, bfl_line_order
from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.exact import opt_bufferless

from .conftest import random_lr_instance


class TestBasics:
    def test_empty_instance(self):
        assert bfl(Instance(4, ())).throughput == 0

    def test_single_message_scheduled_earliest(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        s = bfl(inst)
        assert s.throughput == 1
        # The sweep starts at the largest relevant alpha = earliest departure.
        assert s[0].depart == 2

    def test_rejects_rl_messages(self):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            bfl(inst)

    def test_ignores_infeasible(self):
        inst = make_instance(8, [(0, 6, 0, 3)])
        assert bfl(inst).throughput == 0

    def test_output_is_valid_bufferless(self, paper_example):
        lr, _ = paper_example.split_directions()
        s = bfl(lr)
        validate_schedule(lr, s, require_bufferless=True)

    def test_paper_example_schedules_all_six(self, paper_example):
        # The six messages of Fig. 1 are sparse enough to all fit.
        s = bfl(paper_example)
        assert s.throughput == 6


class TestGreedyBehaviour:
    def test_two_conflicting_identical_messages(self):
        # same line forced (slack 0), overlapping spans: only one fits
        inst = make_instance(6, [(0, 3, 0, 3), (1, 4, 1, 4)])
        s = bfl(inst)
        assert s.throughput == 1
        # nearest destination wins
        assert 0 in s

    def test_nearest_destination_preferred(self):
        # both must use line alpha=0; nearest destination should win,
        # allowing a second disjoint segment to its right
        inst = make_instance(10, [(0, 8, 0, 8), (0, 3, 0, 3), (3, 8, 3, 8)])
        s = bfl(inst)
        assert s.delivered_ids == {1, 2}

    def test_never_schedules_proper_container(self):
        # container [0,6] and contained [2,6] share their right endpoint;
        # the contained segment must be preferred (slack 0 on both)
        inst = make_instance(8, [(0, 6, 0, 6), (2, 6, 2, 6)])
        s = bfl(inst)
        assert 1 in s

    def test_blocked_message_caught_on_later_line(self):
        # message 1 loses line 0 to message 0 (slack 0) but has slack 1
        # and is scheduled on the next line
        inst = make_instance(8, [(0, 4, 0, 4), (0, 4, 0, 5)])
        s = bfl(inst)
        assert s.throughput == 2
        departs = sorted((s[0].depart, s[1].depart))
        assert departs == [0, 1]

    def test_endpoint_sharing_allowed_on_line(self):
        inst = make_instance(10, [(0, 4, 0, 4), (4, 8, 4, 8)])
        s = bfl(inst)
        assert s.throughput == 2
        assert s[0].alpha == s[1].alpha == 0


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(40))
    def test_factor_two_vs_exact(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_lr_instance(rng, k_hi=8)
        approx = bfl(inst).throughput
        exact = opt_bufferless(inst).throughput
        assert 2 * approx >= exact
        assert approx <= exact

    def test_clip_slack_same_throughput(self):
        rng = np.random.default_rng(123)
        for _ in range(20):
            inst = random_lr_instance(rng, max_slack=30)
            assert bfl(inst, clip_slack=True).throughput == bfl(inst).throughput

    def test_clip_slack_schedule_valid_for_original(self):
        inst = make_instance(8, [(0, 3, 0, 50), (2, 6, 1, 40)])
        s = bfl(inst, clip_slack=True)
        validate_schedule(inst, s, require_bufferless=True)


class TestTieBreakAblation:
    def test_all_rules_produce_valid_schedules(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            inst = random_lr_instance(rng)
            for rule in (NEAREST_DEST, EDF, LONGEST_FIRST):
                validate_schedule(inst, bfl(inst, tie_break=rule), require_bufferless=True)

    def test_longest_first_can_be_worse(self):
        # one long message blocks two short ones when preferred
        inst = make_instance(10, [(0, 8, 0, 8), (0, 4, 0, 4), (4, 8, 4, 8)])
        assert bfl(inst).throughput == 2
        assert bfl(inst, tie_break=LONGEST_FIRST).throughput == 1


class TestLineOrder:
    def test_strictly_decreasing(self, paper_example):
        order = bfl_line_order(paper_example)
        assert order == sorted(order, reverse=True)
        assert len(set(order)) == len(order)

    def test_covers_all_windows(self):
        inst = make_instance(8, [(0, 3, 0, 5), (2, 6, 1, 8)])
        order = bfl_line_order(inst)
        expected = set()
        for m in inst:
            expected |= set(range(m.alpha_min, m.alpha_max + 1))
        assert set(order) == expected
