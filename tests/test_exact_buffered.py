"""Tests for exact OPT_B solvers (time-indexed MILP and brute force)."""

import numpy as np
import pytest

from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered, opt_buffered_bruteforce, opt_bufferless
from repro.exact.buffered import buffered_feasible

from .conftest import random_lr_instance


class TestSmallCases:
    def test_empty(self):
        assert opt_buffered(Instance(4, ())).throughput == 0

    def test_single_message(self):
        inst = make_instance(6, [(1, 4, 0, 9)])
        res = opt_buffered(inst)
        assert res.throughput == 1
        validate_schedule(inst, res.schedule)

    def test_buffering_beats_bufferless(self):
        # The k=1 lower-bound gadget: three messages, bufferless fits 2,
        # buffered fits all 3 (see Theorem 4.5 / Fig. 2 discussion).
        inst = make_instance(
            3,
            [
                (0, 2, 0, 3),  # the long message, slack 1
                (0, 1, 1, 2),  # copy 1 of I_0, slack 0
                (1, 2, 1, 2),  # copy 2 of I_0, slack 0
            ],
        )
        assert opt_bufferless(inst).throughput == 2
        res = opt_buffered(inst)
        assert res.throughput == 3
        validate_schedule(inst, res.schedule)
        # the buffered win requires an actual wait
        assert res.schedule.total_wait >= 1

    def test_rejects_rl(self):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            opt_buffered(inst)


class TestFeasibility:
    def test_feasible_all(self):
        msgs = [Message(0, 0, 2, 0, 4), Message(1, 1, 3, 0, 4)]
        s = buffered_feasible(msgs)
        assert s is not None and s.throughput == 2

    def test_infeasible_pair(self):
        # two zero-slack messages over the same link at the same time
        msgs = [Message(0, 0, 2, 0, 2), Message(1, 0, 2, 0, 2)]
        assert buffered_feasible(msgs) is None

    def test_empty_feasible(self):
        s = buffered_feasible([])
        assert s is not None and s.throughput == 0


class TestBruteForce:
    def test_cap(self):
        rng = np.random.default_rng(2)
        inst = random_lr_instance(rng, k_lo=5, k_hi=5)
        with pytest.raises(ValueError, match="cap"):
            opt_buffered_bruteforce(inst, max_messages=3)

    @pytest.mark.parametrize("seed", range(20))
    def test_milp_equals_bruteforce(self, seed):
        rng = np.random.default_rng(2000 + seed)
        inst = random_lr_instance(rng, n_hi=8, k_hi=5, max_slack=3, max_release=4)
        a = opt_buffered(inst)
        b = opt_buffered_bruteforce(inst)
        assert a.throughput == b.throughput
        validate_schedule(inst, a.schedule)
        validate_schedule(inst, b.schedule)


class TestOrderings:
    @pytest.mark.parametrize("seed", range(15))
    def test_buffered_at_least_bufferless(self, seed):
        rng = np.random.default_rng(3000 + seed)
        inst = random_lr_instance(rng, k_hi=6, max_slack=4)
        assert opt_buffered(inst).throughput >= opt_bufferless(inst).throughput

    def test_time_limit_incumbent_still_valid(self):
        rng = np.random.default_rng(9)
        inst = random_lr_instance(rng, k_hi=6)
        res = opt_buffered(inst, time_limit=10.0)
        validate_schedule(inst, res.schedule)
