"""Tests for the ring-network extension."""

import numpy as np
import pytest

from repro.core.bfl import bfl
from repro.core.instance import Instance
from repro.core.message import Message
from repro.topology.ring import ring_bfl
from repro.topology.ring_exact import opt_ring_bufferless
from repro.topology.ring import (
    RingInstance,
    RingMessage,
    RingSchedule,
    RingTrajectory,
    validate_ring_schedule,
)


def random_ring(rng, *, n_lo=3, n_hi=9, k_hi=8, max_release=6, max_slack=5):
    n = int(rng.integers(n_lo, n_hi + 1))
    k = int(rng.integers(1, k_hi + 1))
    msgs = []
    for i in range(k):
        s = int(rng.integers(0, n))
        span = int(rng.integers(1, n))
        r = int(rng.integers(0, max_release + 1))
        sl = int(rng.integers(0, max_slack + 1))
        msgs.append(RingMessage(i, s, (s + span) % n, r, r + span + sl, n))
    return RingInstance(n, tuple(msgs))


class TestRingModel:
    def test_wraparound_span(self):
        m = RingMessage(0, 5, 1, 0, 10, n=6)
        assert m.span == 2
        assert m.slack == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            RingMessage(0, 0, 1, 0, 5, n=2)
        with pytest.raises(ValueError, match="source == dest"):
            RingMessage(0, 2, 2, 0, 5, n=6)
        with pytest.raises(ValueError, match="time window"):
            RingMessage(0, 0, 1, 5, 3, n=6)

    def test_helix_is_modular(self):
        m = RingMessage(0, 1, 3, 0, 30, n=5)
        # departures n apart land on the same helix
        assert m.helix(2) == m.helix(7)
        assert m.helix(2) != m.helix(3)

    def test_trajectory_edges_wrap(self):
        t = RingTrajectory(message_id=0, source=4, depart=0, span=3, n=6)
        assert list(t.edges()) == [(4, 0), (5, 1), (0, 2)]

    def test_schedule_conflict_detection(self):
        a = RingTrajectory(0, 0, 0, 2, 6)
        b = RingTrajectory(1, 1, 1, 2, 6)  # both cross link 1 at time 1
        with pytest.raises(ValueError, match="share"):
            RingSchedule((a, b))

    def test_instance_checks_ring_size(self):
        with pytest.raises(ValueError, match="built for"):
            RingInstance(6, (RingMessage(0, 0, 1, 0, 5, n=5),))


class TestRingBFL:
    def test_empty(self):
        assert ring_bfl(RingInstance(4, ())).throughput == 0

    def test_single_message_wrapping(self):
        inst = RingInstance(5, (RingMessage(0, 3, 1, 0, 10, n=5),))
        sched = ring_bfl(inst)
        assert sched.throughput == 1
        validate_ring_schedule(inst, sched)

    @pytest.mark.parametrize("seed", range(30))
    def test_factor_two_vs_exact(self, seed):
        rng = np.random.default_rng(9500 + seed)
        inst = random_ring(rng)
        greedy = ring_bfl(inst)
        exact = opt_ring_bufferless(inst)
        validate_ring_schedule(inst, greedy)
        validate_ring_schedule(inst, exact.schedule)
        assert greedy.throughput <= exact.throughput
        assert 2 * greedy.throughput >= exact.throughput

    def test_matches_line_bfl_on_arc_instances(self):
        """Traffic confined to an arc never wraps; ring throughput must be
        at least line-BFL's (both are earliest-completion greedies, but the
        ring greedy is not segment-blocked by the sweep order)."""
        rng = np.random.default_rng(77)
        for _ in range(10):
            n = 12
            k = int(rng.integers(2, 8))
            line_msgs, ring_msgs = [], []
            for i in range(k):
                s = int(rng.integers(0, n - 2))
                d = int(rng.integers(s + 1, n - 1))
                r = int(rng.integers(0, 5))
                sl = int(rng.integers(0, 4))
                line_msgs.append(Message(i, s, d, r, r + (d - s) + sl))
                ring_msgs.append(RingMessage(i, s, d, r, r + (d - s) + sl, n))
            line = Instance(n, tuple(line_msgs))
            ring = RingInstance(n, tuple(ring_msgs))
            line_opt = len(bfl(line).delivered_ids)
            ring_got = ring_bfl(ring).throughput
            # both are 2-approximations of the same optimum
            from repro.exact import opt_bufferless

            exact = opt_bufferless(line).throughput
            assert 2 * ring_got >= exact
            assert 2 * line_opt >= exact

    def test_wrap_contention(self):
        # two messages whose paths share the wrap link (n-1 -> 0), zero slack
        n = 4
        inst = RingInstance(
            n,
            (
                RingMessage(0, 3, 1, 0, 2, n),  # crosses link 3 at 0, link 0 at 1
                RingMessage(1, 3, 1, 0, 2, n),  # identical: collides
            ),
        )
        assert ring_bfl(inst).throughput == 1
        assert opt_ring_bufferless(inst).throughput == 1


class TestRingExact:
    def test_empty(self):
        assert opt_ring_bufferless(RingInstance(4, ())).throughput == 0

    def test_slack_clipping_preserves_validity(self):
        inst = RingInstance(5, (RingMessage(0, 0, 2, 0, 1000, n=5),))
        res = opt_ring_bufferless(inst)
        assert res.throughput == 1
        validate_ring_schedule(inst, res.schedule)

    def test_infeasible_ignored(self):
        inst = RingInstance(5, (RingMessage(0, 0, 3, 0, 2, n=5),))
        assert opt_ring_bufferless(inst).throughput == 0
