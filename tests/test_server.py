"""Tests for the serving tier: ``repro.server`` + ``repro.client``.

The contract under test is the ISSUE's headline: a loopback client's
``solve()`` is byte-identical (as ``to_dict``) to the local facade up to
the volatile blocks — ``telemetry`` (wall-clock times) and ``request``
(server-stamped per-call provenance) — across every kind of dispatch
cell, including online; stream sessions finalize exactly the decisions
the equivalent offline replay would; budget-degrade results pass through
as ordinary 200s; backpressure and typed errors surface as the same
exceptions a local call would raise.
"""

import json

import numpy as np
import pytest

from repro import api, obs
from repro.budget import SolverBudget
from repro.client import ReproClient
from repro.errors import BudgetExceeded, ConfigError, ServerError, ServerOverloaded
from repro.online import run_online
from repro.server import ReproServer, error_body, solve_cell
from repro.workloads import general_instance
from repro.workloads.meshes import random_mesh_instance
from repro.workloads.rings import random_ring_instance


def _line(seed=42, **kw):
    kw.setdefault("n", 10)
    kw.setdefault("k", 8)
    return general_instance(np.random.default_rng(seed), **kw)


def _ring(seed=7):
    return random_ring_instance(np.random.default_rng(seed), n=8, k=10)


def _mesh(seed=3):
    return random_mesh_instance(np.random.default_rng(3), rows=4, cols=4, k=10)


def _stripped(result):
    """``to_dict`` minus the volatile blocks (wall times, request stamp)."""
    payload = result.to_dict()
    payload.pop("telemetry", None)
    payload.pop("request", None)
    return payload


@pytest.fixture(scope="module")
def server():
    srv = ReproServer(port=0, jobs=1).start_in_thread()
    yield srv
    srv.shutdown()


@pytest.fixture(scope="module")
def client(server):
    with ReproClient(server.url) as c:
        yield c


class TestEndpoints:
    def test_health(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["wire"] == 1
        assert doc["result_schema"] == api.ScheduleResult.SCHEMA_VERSION

    def test_cells_match_live_dispatch(self, client):
        from repro.topology import dispatch_matrix

        expected = {
            (topo, regime, method)
            for (topo, regime), methods in dispatch_matrix().items()
            for method in methods
        }
        assert set(client.cells()) == expected

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as exc_info:
            client._call("GET", "/v1/nope")
        assert exc_info.value.error_type == "not_found"


# Parity across the matrix: line (all three regimes), ring, mesh — the
# acceptance bar is >= 6 cells including regime="online".
PARITY_CELLS = [
    ("line", "bufferless", "exact", {"solver": "bnb"}),
    ("line", "bufferless", "bfl", {}),
    ("line", "buffered", "bfl", {}),
    ("line", "online", "bfl", {}),
    ("line", "online", "greedy", {}),
    ("ring", "bufferless", "bfl", {}),
    ("ring", "online", "greedy", {}),
    ("mesh", "bufferless", "greedy", {}),
]


class TestSolveParity:
    @pytest.mark.parametrize(
        "topo,regime,method,opts",
        PARITY_CELLS,
        ids=[f"{t}-{r}-{m}" for t, r, m, _ in PARITY_CELLS],
    )
    def test_loopback_matches_local(self, client, topo, regime, method, opts):
        inst = {"line": _line, "ring": _ring, "mesh": _mesh}[topo]()
        local = api.solve(inst, regime, method, **opts)
        remote = client.solve(inst, regime, method, **opts)
        assert _stripped(remote) == _stripped(local)

    def test_request_block_is_stamped(self, client, server):
        result = client.solve(_line(), "bufferless", "bfl", request_id="req-parity-1")
        assert result.request is not None
        assert result.request["id"] == "req-parity-1"
        assert result.request["server"].endswith(str(server.port))
        assert result.request["queue_seconds"] >= 0.0

    def test_budget_degrade_passes_through_as_200(self, client):
        inst = _line(5, n=8, k=6)
        result = client.solve(
            inst,
            "bufferless",
            "exact",
            solver="bnb",
            budget=SolverBudget(nodes=2),
            on_budget="degrade",
        )
        assert result.status == "bounded"
        local = api.solve(
            inst,
            "bufferless",
            "exact",
            solver="bnb",
            budget=SolverBudget(nodes=2),
            on_budget="degrade",
        )
        assert (result.lower, result.upper) == (local.lower, local.upper)

    def test_budget_raise_maps_to_budget_exceeded(self, client):
        with pytest.raises(BudgetExceeded) as exc_info:
            client.solve(
                _line(5, n=8, k=6),
                "bufferless",
                "exact",
                solver="bnb",
                budget=SolverBudget(nodes=2),
                on_budget="raise",
            )
        assert exc_info.value.upper is not None
        assert exc_info.value.lower <= exc_info.value.upper


class TestTypedErrors:
    def test_unknown_method_is_config_error_listing_matrix(self, client):
        with pytest.raises(ConfigError) as exc_info:
            client.solve(_line(), "bufferless", "no-such-method")
        assert "line/bufferless" in str(exc_info.value)

    def test_unknown_regime_is_config_error(self, client):
        with pytest.raises(ConfigError):
            client.solve(_line(), "no-such-regime", "bfl")

    def test_missing_instance_is_bad_request(self, client):
        with pytest.raises(ValueError, match="instance"):
            client._call("POST", "/v1/solve", {"regime": "bufferless"})

    def test_malformed_instance_is_bad_request(self, client):
        with pytest.raises(ValueError):
            client._call(
                "POST", "/v1/solve", {"instance": {"format": "not-an-instance"}}
            )

    def test_error_body_shape(self):
        body = error_body("config", "boom", hint="x")
        assert body == {
            "error": {"type": "config", "message": "boom", "details": {"hint": "x"}},
            "wire": 1,
        }
        with pytest.raises(ValueError):
            error_body("no-such-type", "boom")

    def test_solve_cell_never_raises(self):
        out = solve_cell({"instance": {"format": "garbage"}})
        assert out["ok"] is False
        assert out["error"]["error"]["type"] == "bad_request"


class TestStreams:
    def test_lifecycle_prefix_stability_and_close_parity(self, client):
        inst = _line(11, n=16, k=30, max_release=16, max_slack=6)
        direct = run_online(inst, "bfl")
        arrivals = sorted(inst, key=lambda m: (m.release, m.id))
        streamed = []
        with client.open_stream(n=16, policy="bfl") as stream:
            for i in range(0, len(arrivals), 7):
                got = stream.feed(arrivals[i : i + 7])
                streamed.extend(got)
                # Every decision handed out so far is a stable prefix of
                # the offline run — nothing ever gets retracted.
                assert tuple(streamed) == direct.decisions[: len(streamed)]
            result = stream.close()
        assert result.decisions == direct.decisions
        assert result.delivered_ids == direct.delivered_ids
        assert result.dropped == direct.dropped

    def test_out_of_order_release_is_rejected(self, client):
        with client.open_stream(n=8, policy="bfl") as stream:
            stream.feed(
                [{"id": 1, "source": 0, "dest": 3, "release": 5, "deadline": 12}]
            )
            with pytest.raises(ValueError, match="release"):
                stream.feed(
                    [{"id": 2, "source": 0, "dest": 3, "release": 2, "deadline": 9}]
                )

    def test_abandoned_stream_is_gone(self, client):
        stream = client.open_stream(n=8, policy="bfl")
        stream.abandon()
        with pytest.raises(ServerError) as exc_info:
            client._call("GET", f"/v1/streams/{stream.stream_id}")
        assert exc_info.value.error_type == "not_found"

    def test_unknown_policy_is_config_error(self, client):
        with pytest.raises(ConfigError):
            client.open_stream(n=8, policy="no-such-policy")


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self):
        srv = ReproServer(port=0, jobs=1, max_pending=0).start_in_thread()
        try:
            with ReproClient(srv.url) as c:
                with pytest.raises(ServerOverloaded) as exc_info:
                    c.solve(_line(), "bufferless", "bfl")
                assert exc_info.value.retry_after is not None
                assert exc_info.value.retry_after > 0
                # Health stays answerable while solves are shed.
                assert c.health()["status"] == "ok"
        finally:
            srv.shutdown()

    def test_tenant_quota_sheds_one_tenant_only(self):
        srv = ReproServer(port=0, jobs=1, tenant_quota=0).start_in_thread()
        try:
            with ReproClient(srv.url, tenant="chatty") as c:
                with pytest.raises(ServerOverloaded) as exc_info:
                    c.solve(_line(), "bufferless", "bfl")
                assert exc_info.value.details.get("tenant") == "chatty"
        finally:
            srv.shutdown()

    def test_session_capacity_sheds(self):
        srv = ReproServer(port=0, jobs=1, max_sessions=1).start_in_thread()
        try:
            with ReproClient(srv.url) as c:
                first = c.open_stream(n=8, policy="bfl")
                with pytest.raises(ServerOverloaded):
                    c.open_stream(n=8, policy="bfl")
                first.abandon()
                second = c.open_stream(n=8, policy="bfl")
                second.abandon()
        finally:
            srv.shutdown()


class TestClientResilience:
    def test_retry_after_server_restart(self):
        srv = ReproServer(port=0, jobs=1).start_in_thread()
        port = srv.port
        inst = _line()
        with ReproClient(srv.url, retries=5, backoff=0.02) as c:
            before = c.solve(inst, "bufferless", "bfl")
            srv.shutdown()
            srv2 = ReproServer(port=port, jobs=1).start_in_thread()
            try:
                after = c.solve(inst, "bufferless", "bfl")
            finally:
                srv2.shutdown()
        assert _stripped(after) == _stripped(before)

    def test_unreachable_server_raises_server_error(self):
        with ReproClient("http://127.0.0.1:1", retries=1, backoff=0.01) as c:
            with pytest.raises(ServerError, match="cannot reach"):
                c.health()


class TestObservability:
    def test_trace_export_feeds_obs_report(self, tmp_path):
        trace_path = tmp_path / "serve.jsonl"
        srv = ReproServer(port=0, jobs=1, trace=str(trace_path)).start_in_thread()
        inst = _line()
        with ReproClient(srv.url) as c:
            c.solve(inst, "bufferless", "bfl", request_id="req-traced-1")
            c.solve(inst, "online", "bfl")
            with c.open_stream(n=8, policy="bfl") as stream:
                stream.close()
        srv.shutdown()

        trace = obs.load_trace(trace_path)
        requests = [s for s in trace.spans if s["name"] == "server.request"]
        # 2 solves + stream open + close + the purge DELETE close sends
        assert len(requests) == 5
        ids = {s["attrs"]["request_id"] for s in requests}
        assert "req-traced-1" in ids
        endpoints = {s["attrs"]["endpoint"] for s in requests}
        assert "POST /v1/solve" in endpoints
        assert trace.manifest is not None
        assert trace.manifest.command == "repro serve"
        assert trace.counters["server.requests"] >= 4

        from repro.cli import main

        assert main(["obs", "report", str(trace_path)]) == 0


class TestBenchSmoke:
    def test_serve_bench_runs_fast_and_meets_shape(self):
        from repro.engine.bench import bench_serve

        payload = bench_serve(
            requests=10, warmup=2, stream_n=12, stream_k=30, stream_batch=10
        )
        assert payload["solve"]["requests"] == 10
        assert payload["solve"]["requests_per_second"] > 0
        assert payload["solve"]["p99_latency_ms"] >= payload["solve"]["p50_latency_ms"]
        assert payload["stream"]["decisions_per_second"] > 0


class TestWireSchema:
    def test_parse_instance_json_and_dict_roundtrip(self):
        for inst in (_line(), _ring(), _mesh()):
            from repro.topology import topology_of

            doc = topology_of(inst).instance_to_dict(inst)
            assert api.parse_instance(doc) == inst
            assert api.parse_instance(json.dumps(doc)) == inst

    def test_parse_instance_rejects_garbage(self):
        with pytest.raises(ValueError):
            api.parse_instance("{not json")
        with pytest.raises(ValueError):
            api.parse_instance(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            api.parse_instance({"format": "repro-instance", "topology": "torus"})

    def test_schedule_result_v2_payload_still_parses(self):
        payload = api.solve(_line(), "bufferless", "bfl").to_dict()
        payload.pop("request", None)  # v2 had no request block
        payload["version"] = 2
        old = api.ScheduleResult.from_dict(payload)
        assert old.request is None
        # Re-emitting upgrades to the current schema version.
        assert old.to_dict()["version"] == api.ScheduleResult.SCHEMA_VERSION

    def test_schedule_result_v3_roundtrip_is_lossless(self, client):
        result = client.solve(_line(), "bufferless", "bfl", request_id="rt-1")
        again = api.ScheduleResult.from_dict(result.to_dict())
        assert again == result
        assert again.request["id"] == "rt-1"

    def test_future_schema_version_is_rejected(self):
        payload = api.solve(_line(), "bufferless", "bfl").to_dict()
        payload["version"] = api.ScheduleResult.SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            api.ScheduleResult.from_dict(payload)
