"""Property-based tests tying the algorithms to each other and to bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import edf_bufferless, first_fit, min_laxity_first
from repro.core.bfl import bfl
from repro.core.dbfl import dbfl
from repro.core.instance import Instance
from repro.core.validate import schedule_problems
from repro.exact import cut_upper_bound, feasible_count_bound, opt_bufferless

from .conftest import lr_instances


class TestTheorem52Property:
    """D-BFL == BFL, as a hypothesis property over arbitrary instances."""

    @settings(max_examples=60, deadline=None)
    @given(lr_instances(n=10, max_messages=8, max_release=8, max_slack=6))
    def test_dbfl_equals_bfl(self, inst: Instance):
        central = bfl(inst)
        distributed = dbfl(inst)
        assert distributed.delivered_ids == central.delivered_ids
        assert distributed.schedule.delivery_lines() == central.delivery_lines()

    @settings(max_examples=40, deadline=None)
    @given(lr_instances(n=10, max_messages=8))
    def test_dbfl_output_valid(self, inst: Instance):
        result = dbfl(inst)
        assert schedule_problems(inst, result.schedule) == []
        assert result.delivered_ids | result.dropped_ids == set(inst.ids)


class TestApproximationProperty:
    @settings(max_examples=30, deadline=None)
    @given(lr_instances(n=8, max_messages=6, max_slack=4, max_release=5))
    def test_bfl_within_factor_two(self, inst: Instance):
        approx = bfl(inst).throughput
        exact = opt_bufferless(inst).throughput
        assert approx <= exact
        assert 2 * approx >= exact


class TestBoundsProperty:
    @settings(max_examples=50, deadline=None)
    @given(lr_instances(max_messages=8))
    def test_all_schedulers_respect_upper_bounds(self, inst: Instance):
        fcount = feasible_count_bound(inst)
        cut = cut_upper_bound(inst)
        for scheduler in (bfl, edf_bufferless, first_fit, min_laxity_first):
            got = scheduler(inst).throughput
            assert got <= fcount
            assert got <= cut

    @settings(max_examples=50, deadline=None)
    @given(lr_instances(max_messages=8))
    def test_cut_bound_at_most_feasible_count(self, inst: Instance):
        assert cut_upper_bound(inst) <= feasible_count_bound(inst)


class TestMonotonicityProperties:
    @settings(max_examples=30, deadline=None)
    @given(lr_instances(n=8, max_messages=5, max_slack=3, max_release=4), st.integers(1, 4))
    def test_extra_slack_never_hurts_optimum(self, inst: Instance, extra: int):
        """Relaxing every deadline by `extra` can only increase OPT_BL."""
        relaxed = Instance(
            inst.n,
            tuple(
                type(m)(m.id, m.source, m.dest, m.release, m.deadline + extra)
                for m in inst
            ),
        )
        assert opt_bufferless(relaxed).throughput >= opt_bufferless(inst).throughput

    @settings(max_examples=30, deadline=None)
    @given(lr_instances(n=8, max_messages=6, max_slack=4, max_release=5))
    def test_removing_a_message_drops_opt_by_at_most_one(self, inst: Instance):
        if len(inst) == 0:
            return
        full = opt_bufferless(inst).throughput
        first_id = inst.ids[0]
        reduced = inst.restrict([i for i in inst.ids if i != first_id])
        sub = opt_bufferless(reduced).throughput
        assert full - 1 <= sub <= full
