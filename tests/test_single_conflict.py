"""Tests for the Theorem 4.3 Claim-2 single-conflict rewriting."""

import numpy as np
import pytest

from repro.baselines import MinLaxityPolicy
from repro.network.simulator import simulate
from repro.constructions import delivery_line_filter
from repro.constructions.single_conflict import is_single_conflict, make_single_conflict
from repro.constructions.static_conversion import single_conflict_counts
from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.schedule import Schedule
from repro.core.trajectory import Trajectory
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered
from repro.workloads import static_instance


def comb(k: int, *, base: int | None = None, line: int = -3, extra_slack: int = 0):
    """A static instance + buffered schedule where the pivot message
    (``base -> base+2``) has exactly ``k`` conflicts on ``line``.

    Conflict ``i`` starts at ``base`` or ``base+1``, travels on its own
    early line ``i``, and drops onto ``line`` only for its final hop into
    ``base + 3 + i`` — the nested pattern Claim 2 untangles.
    """
    if base is None:
        base = k + 1
    assert base >= k + 1, "need base >= k+1 so early lines stay in time >= 0"
    msgs = []
    trajs = []
    # the pivot: travels on line k+1, then its final hop on `line`
    d_p = base + 2
    pivot_cross = (base - (k + 1), (base + 1) - line)
    msgs.append(Message(0, base, d_p, 0, d_p - line + extra_slack))
    trajs.append(Trajectory(0, base, pivot_cross))
    for i in range(1, k + 1):
        s = base + ((i + 1) % 2)
        d = base + 3 + i
        cross = tuple(v - i for v in range(s, d - 1)) + ((d - 1) - line,)
        msgs.append(Message(i, s, d, 0, d - line + extra_slack))
        trajs.append(Trajectory(i, s, cross))
    inst = Instance(max(m.dest for m in msgs) + 1, tuple(msgs))
    sched = Schedule(tuple(trajs))
    validate_schedule(inst, sched)
    return inst, sched


class TestCombConstruction:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_comb_has_k_conflicts(self, k):
        _, sched = comb(k)
        assert single_conflict_counts(sched)[0] == k


class TestRewriting:
    def test_requires_static(self):
        inst = make_instance(6, [(0, 2, 1, 9)])
        with pytest.raises(ValueError, match="static"):
            make_single_conflict(inst, Schedule())

    def test_noop_on_clean_schedule(self):
        inst = make_instance(6, [(0, 3, 0, 9)])
        sched = opt_buffered(inst).schedule
        out = make_single_conflict(inst, sched)
        assert out.delivered_ids == sched.delivered_ids

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_comb_rewritten(self, k):
        inst, sched = comb(k)
        out = make_single_conflict(inst, sched)
        validate_schedule(inst, out)
        assert out.delivered_ids == sched.delivered_ids
        assert is_single_conflict(out)
        # the farthest conflict remains; the pivot keeps exactly one
        assert single_conflict_counts(out)[0] <= 1

    @pytest.mark.parametrize("k", [2, 4])
    def test_comb_with_slack_headroom(self, k):
        inst, sched = comb(k, extra_slack=5)
        out = make_single_conflict(inst, sched)
        assert is_single_conflict(out)

    def test_idempotent(self):
        inst, sched = comb(3)
        once = make_single_conflict(inst, sched)
        twice = make_single_conflict(inst, once)
        assert twice.delivered_ids == once.delivered_ids
        assert is_single_conflict(twice)

    def test_handcrafted_two_conflicts(self):
        inst = make_instance(6, [(0, 2, 0, 5), (0, 4, 0, 7), (1, 5, 0, 8)])
        sched = Schedule(
            (
                Trajectory(0, 0, (0, 4)),
                Trajectory(1, 0, (1, 2, 3, 6)),
                Trajectory(2, 1, (3, 4, 5, 7)),
            )
        )
        validate_schedule(inst, sched)
        assert single_conflict_counts(sched)[0] == 2
        out = make_single_conflict(inst, sched)
        validate_schedule(inst, out)
        assert single_conflict_counts(out)[0] == 1


class TestClaimsCompose:
    """Claim 2 + Claim 1 == the constructive half of Theorem 4.3."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_constructive_factor_two_on_combs(self, k):
        inst, sched = comb(k)
        single = make_single_conflict(inst, sched)
        kept = delivery_line_filter(inst, single)
        validate_schedule(inst, kept, require_bufferless=True)
        assert 2 * kept.throughput >= sched.throughput

    @pytest.mark.parametrize("seed", range(20))
    def test_constructive_factor_two_random(self, seed):
        rng = np.random.default_rng(4300 + seed)
        inst = static_instance(
            rng, n=int(rng.integers(5, 9)), k=int(rng.integers(6, 12)), max_slack=4
        )
        sched = simulate(inst, MinLaxityPolicy()).schedule
        single = make_single_conflict(inst, sched)
        assert is_single_conflict(single)
        assert single.delivered_ids == sched.delivered_ids
        kept = delivery_line_filter(inst, single)
        validate_schedule(inst, kept, require_bufferless=True)
        assert 2 * kept.throughput >= sched.throughput

    @pytest.mark.parametrize("seed", range(10))
    def test_constructive_factor_two_vs_exact(self, seed):
        rng = np.random.default_rng(4400 + seed)
        inst = static_instance(rng, n=8, k=8, max_slack=3)
        buffered = opt_buffered(inst).schedule
        single = make_single_conflict(inst, buffered)
        kept = delivery_line_filter(inst, single)
        # the full constructive pipeline achieves the theorem's bound
        assert 2 * kept.throughput >= buffered.throughput
