"""Tests for the canonical instance registry."""

import pytest

from repro.core.bfl import bfl
from repro.datasets import available, describe, load
from repro.exact import opt_buffered, opt_bufferless


class TestRegistry:
    def test_available_sorted_and_nonempty(self):
        names = available()
        assert names == sorted(names) and len(names) >= 5

    def test_every_entry_loads_and_describes(self):
        for name in available():
            inst = load(name)
            assert len(inst) >= 1
            assert isinstance(describe(name), str)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("nope")
        with pytest.raises(KeyError, match="unknown dataset"):
            describe("nope")

    def test_deterministic(self):
        assert load("paper-figure1").messages == load("paper-figure1").messages


class TestAdvertisedProperties:
    """Each dataset's docstring claim, verified."""

    def test_paper_figure1(self, paper_example):
        assert load("paper-figure1").messages == paper_example.messages

    def test_two_conflicting(self):
        assert opt_bufferless(load("two-conflicting")).throughput == 1

    def test_bfl_half(self):
        inst = load("bfl-half")
        assert bfl(inst).throughput == 1
        assert opt_bufferless(inst).throughput == 2

    def test_buffering_helps(self):
        inst = load("buffering-helps")
        assert opt_bufferless(inst).throughput == 2
        assert opt_buffered(inst).throughput == 3

    def test_lower_bound_entries(self):
        k2 = load("lower-bound-k2")
        assert len(k2) == 8
        assert opt_bufferless(k2).throughput == 4

    def test_span_counterexample_is_the_tested_one(self):
        inst = load("span-counterexample")
        assert [(m.source, m.dest) for m in inst] == [(2, 4), (3, 5)]
