"""Structured solver budgets: typed exhaustion with certified bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetExceeded, ReproError, SolverBackendError, SolverBudget, api
from repro.exact import opt_buffered, opt_bufferless, opt_bufferless_bnb

from .conftest import random_lr_instance


@pytest.fixture
def small():
    rng = np.random.default_rng(3)
    return random_lr_instance(rng, n_lo=6, n_hi=6, k_lo=6, k_hi=6, max_slack=3)


class TestBudgetTypes:
    def test_budget_validation(self):
        with pytest.raises(ValueError, match="wall_time and/or nodes"):
            SolverBudget()
        with pytest.raises(ValueError, match="nodes"):
            SolverBudget(nodes=0)
        with pytest.raises(ValueError, match="wall_time"):
            SolverBudget(wall_time=-1.0)

    def test_exception_hierarchy(self):
        # the legacy node-limit contract caught bare RuntimeError; the typed
        # exceptions must keep satisfying it
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(SolverBackendError, RuntimeError)
        assert issubclass(SolverBackendError, ReproError)

    def test_meter_counts_nodes(self):
        meter = SolverBudget(nodes=3).meter()
        assert meter.tick() is None
        assert meter.tick() is None
        assert meter.tick() is None  # exactly at the limit: still in budget
        assert meter.tick() == "nodes"
        assert meter.spent()["nodes"] == 4


class TestBnbBudget:
    def test_raise_carries_certified_bounds(self, small):
        opt = opt_bufferless_bnb(small).schedule.throughput
        with pytest.raises(BudgetExceeded, match="exceeded") as excinfo:
            opt_bufferless_bnb(small, budget=SolverBudget(nodes=3))
        exc = excinfo.value
        assert exc.lower <= opt <= exc.upper
        assert exc.spent["nodes"] >= 3
        assert exc.incumbent is not None
        assert exc.incumbent.throughput == exc.lower

    def test_legacy_node_limit_still_budget_typed(self, small):
        with pytest.raises(BudgetExceeded):
            opt_bufferless_bnb(small, node_limit=2)

    def test_unbudgeted_solve_unchanged(self, small):
        budgeted = opt_bufferless_bnb(small, budget=SolverBudget(nodes=10**9))
        plain = opt_bufferless_bnb(small)
        assert budgeted.schedule.delivered_ids == plain.schedule.delivered_ids
        assert budgeted.optimal and plain.optimal


class TestApiDegrade:
    def test_bnb_degrade_brackets_opt(self, small):
        opt = opt_bufferless_bnb(small).schedule.throughput
        res = api.solve(
            small,
            method="exact",
            solver="bnb",
            budget=SolverBudget(nodes=3),
            on_budget="degrade",
        )
        assert res.status in ("bounded", "optimal")
        assert res.lower <= opt <= res.upper
        # the returned schedule is the incumbent, hence the lower bound
        assert res.schedule.throughput == res.lower
        assert res.optimal is (res.status == "optimal")
        if res.status == "bounded":
            assert "budget" in res.telemetry

    def test_milp_wall_budget_degrades_both_regimes(self, small):
        opt_bl = opt_bufferless(small).schedule.throughput
        res = api.solve(
            small, budget=SolverBudget(wall_time=1e-6), on_budget="degrade"
        )
        assert res.status in ("bounded", "infeasible", "optimal")
        upper = res.upper if res.upper is not None else float("inf")
        assert res.lower <= opt_bl <= upper

        opt_b = opt_buffered(small).schedule.throughput
        res_b = api.solve(
            small,
            regime="buffered",
            budget=SolverBudget(wall_time=1e-6),
            on_budget="degrade",
        )
        upper_b = res_b.upper if res_b.upper is not None else float("inf")
        assert res_b.lower <= opt_b <= upper_b

    def test_default_on_budget_raises(self, small):
        with pytest.raises(BudgetExceeded):
            api.solve(small, method="exact", solver="bnb", budget=SolverBudget(nodes=2))

    def test_on_budget_value_checked(self, small):
        with pytest.raises(ValueError, match="on_budget"):
            api.solve(small, on_budget="ignore")

    def test_budget_rejected_for_heuristics(self, small):
        with pytest.raises(TypeError, match="budget"):
            api.solve(small, method="bfl", budget=SolverBudget(nodes=5))

    def test_optimal_solve_reports_tight_bounds(self, small):
        res = api.solve(small, method="exact")
        assert res.status == "optimal"
        assert res.lower == res.upper == res.schedule.throughput
