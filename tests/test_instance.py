"""Unit tests for Instance."""

import numpy as np
import pytest

from repro.core.instance import Instance, make_instance
from repro.core.message import Message


class TestConstruction:
    def test_make_instance_assigns_ids(self):
        inst = make_instance(6, [(0, 3, 0, 5), (1, 4, 0, 6)])
        assert inst.ids == (0, 1)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Instance(6, (Message(0, 0, 3, 0, 5), Message(0, 1, 4, 0, 6)))

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(ValueError, match="outside"):
            make_instance(4, [(0, 5, 0, 9)])

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError, match="at least 2"):
            Instance(1, ())

    def test_require_feasible(self):
        with pytest.raises(ValueError, match="negative slack"):
            make_instance(8, [(0, 6, 0, 3)], require_feasible=True)

    def test_lookup_by_id(self):
        inst = make_instance(6, [(0, 3, 0, 5), (1, 4, 0, 6)])
        assert inst[1].source == 1
        assert 1 in inst and 7 not in inst
        with pytest.raises(KeyError):
            inst[7]


class TestAggregates:
    def test_paper_example_stats(self, paper_example):
        slacks = sorted(m.slack for m in paper_example)
        assert slacks == [1, 3, 4, 4, 7, 8]
        assert paper_example.max_slack == 8
        assert paper_example.max_span == 10
        assert paper_example.lam == 6  # min(8, 10, |I|=6)

    def test_empty_instance(self):
        inst = Instance(4, ())
        assert len(inst) == 0
        assert inst.max_slack == 0 and inst.max_span == 0 and inst.lam == 0
        assert inst.horizon == 1

    def test_horizon(self):
        inst = make_instance(6, [(0, 3, 0, 5), (1, 4, 2, 11)])
        assert inst.horizon == 12

    def test_uniform_flags(self):
        uni = make_instance(8, [(0, 3, 0, 5), (2, 5, 1, 6)])  # both slack 2, span 3
        assert uni.uniform_slack and uni.uniform_span
        assert not uni.static
        static = make_instance(8, [(0, 3, 0, 5), (2, 7, 0, 9)])
        assert static.static


class TestDirections:
    def test_split_and_mirror_roundtrip(self):
        inst = Instance(
            10,
            (
                Message(0, 1, 6, 0, 9),
                Message(1, 8, 2, 1, 12),
                Message(2, 4, 9, 0, 6),
            ),
        )
        lr, rl = inst.split_directions()
        assert lr.ids == (0, 2) and rl.ids == (1,)
        assert rl.mirrored().all_left_to_right
        # mirroring twice restores the original messages
        assert rl.mirrored().mirrored().messages == rl.messages


class TestTransforms:
    def test_restrict_and_filter(self):
        inst = make_instance(8, [(0, 3, 0, 5), (1, 4, 0, 6), (2, 5, 0, 7)])
        assert inst.restrict([0, 2]).ids == (0, 2)
        assert inst.filter(lambda m: m.source >= 1).ids == (1, 2)

    def test_drop_infeasible(self):
        inst = make_instance(8, [(0, 3, 0, 5), (0, 7, 0, 3)])
        assert inst.drop_infeasible().ids == (0,)

    def test_clipped_slack_default(self):
        inst = make_instance(8, [(0, 1, 0, 100), (1, 2, 0, 100)])
        clipped = inst.clipped_slack()
        assert all(m.slack <= 1 for m in clipped)  # |I| - 1 == 1

    def test_translated_rehomes(self):
        inst = make_instance(4, [(0, 3, 0, 5)])
        big = inst.translated(dnode=2, dtime=1, n=8)
        assert big.n == 8
        assert big.messages[0].source == 2
        assert big.messages[0].release == 1

    def test_merged_with_renumbers(self):
        a = make_instance(6, [(0, 3, 0, 5)])
        b = make_instance(6, [(1, 4, 0, 6), (2, 5, 0, 7)])
        merged = a.merged_with(b)
        assert merged.ids == (0, 1, 2)
        assert len(merged) == 3


class TestArrays:
    def test_as_arrays_matches_messages(self, paper_example):
        cols = paper_example.as_arrays()
        for j, m in enumerate(paper_example):
            assert cols["id"][j] == m.id
            assert cols["span"][j] == m.span
            assert cols["slack"][j] == m.slack

    def test_as_arrays_empty(self):
        cols = Instance(4, ()).as_arrays()
        assert all(v.shape == (0,) for v in cols.values())

    def test_as_arrays_dtype(self, paper_example):
        cols = paper_example.as_arrays()
        assert all(v.dtype == np.int64 for v in cols.values())
