"""Invariant tests for the finite-buffer regime (ablation A2's substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EDFPolicy
from repro.network.simulator import simulate
from repro.core.dbfl import dbfl
from repro.core.instance import Instance
from repro.workloads import hotspot_instance, saturated_instance

from .conftest import lr_instances


class TestCapacityInvariant:
    @settings(max_examples=40, deadline=None)
    @given(lr_instances(n=10, max_messages=10), st.integers(0, 3))
    def test_occupancy_never_exceeds_capacity(self, inst: Instance, cap: int):
        """The resulting schedule's intermediate-buffer peaks respect the
        simulated capacity (source buffering excluded, as in the model)."""
        result = dbfl(inst.with_buffer_capacity(cap))
        peaks = result.schedule.max_buffer_occupancy()
        sources = {m.source for m in inst}
        for node, peak in peaks.items():
            # a node may exceed cap only through its *own* source traffic,
            # which is unbounded; intermediate stays within cap.
            if node not in sources:
                assert peak <= cap

    @settings(max_examples=30, deadline=None)
    @given(lr_instances(n=10, max_messages=10))
    def test_capacity_monotone(self, inst: Instance):
        """Throughput is monotone in buffer capacity (0 <= 2 <= inf)."""
        t0 = dbfl(inst.with_buffer_capacity(0)).throughput
        t2 = dbfl(inst.with_buffer_capacity(2)).throughput
        tinf = dbfl(inst).throughput
        assert t0 <= t2 + 2  # near-monotone: drops at cap 0 can reshuffle...
        assert t2 <= tinf + 2

    def test_unbounded_equals_large_capacity(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            inst = saturated_instance(rng, n=12, load=1.5, horizon=20)
            big = dbfl(inst.with_buffer_capacity(len(inst))).throughput
            unbounded = dbfl(inst).throughput
            assert big == unbounded

    def test_capacity_zero_means_bufferless_transit(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            inst = hotspot_instance(rng, n=16, k=20)
            result = simulate(inst, EDFPolicy(), buffer_capacity=0)
            for traj in result.schedule:
                # any waiting must happen before departure, never en route
                assert traj.bufferless
