"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("e1", "e6", "e11", "a1", "a2"):
            assert name in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "e6"]) == 0
        out = capsys.readouterr().out
        assert "== e6" in out
        assert "half_log_lambda" in out

    def test_run_e1_prints_summary(self, capsys):
        assert main(["run", "e1"]) == 0
        out = capsys.readouterr().out
        assert "BFL throughput" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_run_trials_override(self, capsys):
        assert main(["run", "e2", "--trials", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "| 2 " in out  # the trials column reflects the override


class TestTrace:
    @pytest.fixture(autouse=True)
    def _reset_tracer(self):
        yield
        from repro import obs

        obs.disable()  # --trace enables the process-wide tracer; undo it

    def test_run_trace_writes_parseable_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        assert main(["run", "e2", "--trials", "2", "--trace", str(path)]) == 0
        assert f"trace written to {path}" in capsys.readouterr().out
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "manifest"
        assert lines[0]["config"]["trials"] == 2
        types = {l["type"] for l in lines}
        assert "span" in types and "counter" in types
        names = {l["name"] for l in lines if l["type"] == "span"}
        assert "experiment.e2" in names

    def test_obs_report_summarizes(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        # distinct seed so the process-wide solver cache (warmed by other
        # tests) doesn't absorb the exact-solver calls this asserts on
        assert main(["run", "e2", "--trials", "2", "--seed", "777", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "experiment.e2" in out  # per-phase timings
        assert "exact.milp.solves" in out  # solver counters
        assert "hit rate" in out  # cache hit rate

    def test_obs_report_missing_file(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestFigure:
    @pytest.mark.parametrize("number,needle", [(1, "22-node"), (2, "I_2"), (3, "clause")])
    def test_figures_print(self, capsys, number, needle):
        args = ["figure", str(number)]
        if number == 2:
            args += ["--k", "2"]
        assert main(args) == 0
        assert needle in capsys.readouterr().out

    def test_figure_validates_number(self):
        with pytest.raises(SystemExit):
            main(["figure", "4"])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1", "--n", "10", "--messages", "6"]) == 0
        out = capsys.readouterr().out
        assert "BFL delivers" in out
        assert "sets equal: True" in out


class TestSolve:
    @pytest.fixture
    def instance_file(self, tmp_path):
        import numpy as np

        from repro.io import save_instance
        from repro.workloads import general_instance

        inst = general_instance(np.random.default_rng(0), n=10, k=8)
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        return path

    @pytest.mark.parametrize("algorithm", ["bfl", "dbfl", "edf", "exact"])
    def test_algorithms(self, capsys, instance_file, algorithm):
        assert main(["solve", str(instance_file), "--algorithm", algorithm]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_writes_schedule(self, capsys, tmp_path, instance_file):
        out = tmp_path / "sched.json"
        assert main(["solve", str(instance_file), "--out", str(out)]) == 0
        from repro.io import load_instance, load_schedule
        from repro.core.validate import validate_schedule

        validate_schedule(load_instance(instance_file), load_schedule(out))

    def test_gantt_flag(self, capsys, instance_file):
        assert main(["solve", str(instance_file), "--gantt"]) == 0
        assert "utilisation" in capsys.readouterr().out


class TestDataset:
    def test_list(self, capsys):
        assert main(["dataset", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-figure1" in out and "bfl-half" in out

    def test_show(self, capsys):
        assert main(["dataset", "show", "paper-figure1"]) == 0
        out = capsys.readouterr().out
        assert "22 nodes" in out
        assert "|" in out  # the lattice drawing

    def test_show_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "fig1.json"
        assert main(["dataset", "show", "paper-figure1", "--out", str(out_path)]) == 0
        from repro.io import load_instance

        assert len(load_instance(out_path)) == 6

    def test_unknown_dataset(self, capsys):
        assert main(["dataset", "show", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
