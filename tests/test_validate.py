"""Unit tests for schedule validation against an instance."""

import pytest

from repro.core.instance import make_instance
from repro.core.schedule import Schedule
from repro.core.trajectory import Trajectory
from repro.core.validate import ScheduleError, assert_valid, schedule_problems, validate_schedule


@pytest.fixture
def inst():
    # message 0: 1 -> 4, window [2, 9]; message 1: 0 -> 2, window [0, 4]
    return make_instance(6, [(1, 4, 2, 9), (0, 2, 0, 4)])


class TestValid:
    def test_empty_schedule_valid(self, inst):
        validate_schedule(inst, Schedule())

    def test_straight_line_valid(self, inst):
        s = Schedule((Trajectory(0, 1, (2, 3, 4)),))
        validate_schedule(inst, s, require_bufferless=True)

    def test_buffered_valid(self, inst):
        s = Schedule((Trajectory(0, 1, (2, 4, 6)),))
        validate_schedule(inst, s)

    def test_assert_valid_passthrough(self, inst):
        s = Schedule((Trajectory(0, 1, (2, 3, 4)),))
        assert assert_valid(inst, s) is s


class TestViolations:
    def test_unknown_message(self, inst):
        s = Schedule((Trajectory(9, 1, (2, 3, 4)),))
        assert any("not in instance" in p for p in schedule_problems(inst, s))

    def test_wrong_endpoints(self, inst):
        s = Schedule((Trajectory(0, 0, (2, 3, 4)),))
        assert any("trajectory runs" in p for p in schedule_problems(inst, s))

    def test_early_departure(self, inst):
        s = Schedule((Trajectory(0, 1, (1, 3, 4)),))
        assert any("before release" in p for p in schedule_problems(inst, s))

    def test_late_arrival(self, inst):
        s = Schedule((Trajectory(0, 1, (2, 8, 9)),))
        assert any("after deadline" in p for p in schedule_problems(inst, s))

    def test_buffered_flagged_when_bufferless_required(self, inst):
        s = Schedule((Trajectory(0, 1, (2, 4, 6)),))
        assert schedule_problems(inst, s) == []
        probs = schedule_problems(inst, s, require_bufferless=True)
        assert any("waits" in p for p in probs)

    def test_validate_raises_with_all_problems(self, inst):
        s = Schedule((Trajectory(0, 1, (1, 8, 10)),))
        with pytest.raises(ScheduleError) as exc:
            validate_schedule(inst, s)
        text = str(exc.value)
        assert "before release" in text and "after deadline" in text

    def test_rl_message_flagged(self):
        inst = make_instance(6, [(4, 1, 0, 9)])
        s = Schedule((Trajectory(0, 1, (0, 1, 2)),))
        assert any("not left-to-right" in p for p in schedule_problems(inst, s))

    def test_buffer_capacity(self):
        inst = make_instance(6, [(0, 2, 0, 20), (0, 2, 0, 20), (0, 2, 0, 20)])
        # messages with ids 0..2 all parked at node 1 simultaneously
        s = Schedule(
            (
                Trajectory(0, 0, (0, 10)),
                Trajectory(1, 0, (1, 11)),
                Trajectory(2, 0, (2, 12)),
            )
        )
        assert schedule_problems(inst, s, buffer_capacity=3) == []
        probs = schedule_problems(inst, s, buffer_capacity=2)
        assert any("exceeds capacity" in p for p in probs)
