"""Tests for DIMACS CNF parsing and serialisation."""

import numpy as np
import pytest

from repro.hardness import CNF, dpll_sat, random_3sat
from repro.hardness.dimacs import load_dimacs, parse_dimacs, save_dimacs, to_dimacs


SAMPLE = """\
c sample formula
p cnf 3 2
1 -2 3 0
-1 2 -3 0
"""


class TestParse:
    def test_basic(self):
        f = parse_dimacs(SAMPLE)
        assert f.num_vars == 3
        assert [cl.literals for cl in f.clauses] == [(1, -2, 3), (-1, 2, -3)]

    def test_comments_and_blank_lines_ignored(self):
        f = parse_dimacs("c x\n\np cnf 3 1\nc y\n1 2 3 0\n")
        assert len(f) == 1

    def test_clause_split_across_lines(self):
        f = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert f.clauses[0].literals == (1, 2, 3)

    def test_missing_header(self):
        with pytest.raises(ValueError, match="before 'p cnf'"):
            parse_dimacs("1 2 3 0\n")
        with pytest.raises(ValueError, match="missing 'p cnf'"):
            parse_dimacs("c only comments\n")

    def test_malformed_header(self):
        with pytest.raises(ValueError, match="malformed problem line"):
            parse_dimacs("p sat 3 1\n1 2 3 0\n")

    def test_non_3sat_rejected(self):
        with pytest.raises(ValueError, match="strict 3-SAT"):
            parse_dimacs("p cnf 3 1\n1 2 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse_dimacs("p cnf 3 1\n1 2 3\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(ValueError, match="declares 2"):
            parse_dimacs("p cnf 3 2\n1 2 3 0\n")


class TestRoundtrip:
    def test_text_roundtrip(self):
        f = CNF.of(4, [(1, -2, 3), (2, 3, -4)])
        assert parse_dimacs(to_dimacs(f)) == f

    def test_comment_emitted(self):
        text = to_dimacs(CNF.of(3, [(1, 2, 3)]), comment="hello\nworld")
        assert text.startswith("c hello\nc world\n")

    def test_file_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        f = random_3sat(5, 10, rng)
        path = tmp_path / "f.cnf"
        save_dimacs(f, path, comment="random 3-sat")
        again = load_dimacs(path)
        assert again == f
        assert dpll_sat(again) == dpll_sat(f)
