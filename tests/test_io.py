"""Tests for JSON serialization."""

import json

import numpy as np
import pytest

from repro.core.bfl import bfl
from repro.core.schedule import Schedule
from repro.core.trajectory import Trajectory
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

from .conftest import random_lr_instance


class TestInstanceRoundtrip:
    def test_dict_roundtrip(self, paper_example):
        assert instance_from_dict(instance_to_dict(paper_example)) == paper_example

    def test_file_roundtrip(self, tmp_path, paper_example):
        path = tmp_path / "inst.json"
        save_instance(paper_example, path)
        assert load_instance(path) == paper_example

    def test_file_is_plain_json(self, tmp_path, paper_example):
        path = tmp_path / "inst.json"
        save_instance(paper_example, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-instance"
        assert data["n"] == 22
        assert len(data["messages"]) == 6

    def test_random_roundtrips(self, tmp_path):
        rng = np.random.default_rng(0)
        for i in range(10):
            inst = random_lr_instance(rng)
            path = tmp_path / f"i{i}.json"
            save_instance(inst, path)
            assert load_instance(path) == inst


class TestScheduleRoundtrip:
    def test_buffered_roundtrip(self):
        sched = Schedule((Trajectory(3, 1, (0, 4, 5)), Trajectory(7, 0, (2,))))
        again = schedule_from_dict(schedule_to_dict(sched))
        assert again.trajectories == sched.trajectories

    def test_bfl_output_roundtrip(self, tmp_path, paper_example):
        sched = bfl(paper_example)
        path = tmp_path / "s.json"
        save_schedule(sched, path)
        again = load_schedule(path)
        assert again.delivered_ids == sched.delivered_ids
        assert again.delivery_lines() == sched.delivery_lines()


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="expected format"):
            instance_from_dict({"format": "nope", "version": 1})
        with pytest.raises(ValueError, match="expected format"):
            schedule_from_dict({"format": "repro-instance", "version": 1})

    def test_wrong_version_rejected(self, paper_example):
        data = instance_to_dict(paper_example)
        data["version"] = 99
        with pytest.raises(ValueError, match="unsupported version"):
            instance_from_dict(data)

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            instance_from_dict(
                {"format": "repro-instance", "version": 1, "n": 4, "messages": [{"id": 0}]}
            )

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            instance_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_conflicting_schedule_rejected_on_load(self):
        data = {
            "format": "repro-schedule",
            "version": 1,
            "trajectories": [
                {"message_id": 0, "source": 0, "crossings": [0, 1]},
                {"message_id": 1, "source": 0, "crossings": [0, 1]},
            ],
        }
        with pytest.raises(Exception):  # ConflictError (a ValueError subclass)
            schedule_from_dict(data)
