"""Tests for the 3-SAT substrate and the Appendix-A reduction."""

import itertools

import numpy as np
import pytest

from repro.exact import opt_buffered, opt_bufferless
from repro.hardness import (
    CNF,
    Clause,
    dpll_sat,
    dpll_solve,
    random_3sat,
    reduce_3sat,
    satisfying_assignment_from_schedule,
)


def all_patterns_unsat(v: int = 3) -> CNF:
    """All 2^3 sign patterns over three variables: classically unsatisfiable."""
    rows = [
        tuple(s * x for s, x in zip(signs, (1, 2, 3)))
        for signs in itertools.product((1, -1), repeat=3)
    ]
    return CNF.of(v, rows)


class TestCNF:
    def test_clause_requires_three_distinct_vars(self):
        with pytest.raises(ValueError, match="distinct"):
            Clause((1, -1, 2))
        with pytest.raises(ValueError, match="3 literals"):
            Clause((1, 2))  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="literal 0"):
            Clause((0, 1, 2))

    def test_cnf_range_check(self):
        with pytest.raises(ValueError, match="exceeds"):
            CNF.of(2, [(1, 2, 3)])

    def test_satisfied_by(self):
        f = CNF.of(3, [(1, -2, 3)])
        assert f.satisfied_by({1: True, 2: True, 3: False})
        assert not f.satisfied_by({1: False, 2: True, 3: False})

    def test_literal_occurrences(self):
        f = CNF.of(3, [(1, 2, 3), (-1, 2, -3)])
        occ = f.literal_occurrences()
        assert occ[1] == [0] and occ[-1] == [1] and occ[2] == [0, 1]

    def test_random_3sat_shape(self):
        rng = np.random.default_rng(0)
        f = random_3sat(5, 12, rng)
        assert f.num_vars == 5 and len(f) == 12
        for cl in f:
            assert len(cl.variables) == 3

    def test_random_3sat_needs_three_vars(self):
        with pytest.raises(ValueError):
            random_3sat(2, 1, np.random.default_rng(0))


class TestDPLL:
    def test_empty_formula_sat(self):
        assert dpll_sat(CNF.of(3, []))

    def test_single_clause(self):
        f = CNF.of(3, [(1, 2, 3)])
        model = dpll_solve(f)
        assert model is not None and f.satisfied_by(model)

    def test_all_patterns_unsat(self):
        assert not dpll_sat(all_patterns_unsat())

    def test_model_is_total(self):
        f = CNF.of(5, [(1, 2, 3)])
        model = dpll_solve(f)
        assert model is not None and set(model) == {1, 2, 3, 4, 5}

    @pytest.mark.parametrize("seed", range(20))
    def test_agrees_with_bruteforce(self, seed):
        rng = np.random.default_rng(7000 + seed)
        f = random_3sat(4, int(rng.integers(1, 12)), rng)
        brute = any(
            f.satisfied_by(dict(zip(range(1, 5), bits)))
            for bits in itertools.product((False, True), repeat=4)
        )
        assert dpll_sat(f) == brute

    def test_returned_model_satisfies(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            f = random_3sat(5, int(rng.integers(1, 15)), rng)
            model = dpll_solve(f)
            if model is not None:
                assert f.satisfied_by(model)


class TestReductionStructure:
    def test_message_count_and_kinds(self):
        f = CNF.of(3, [(1, 2, 3)])
        red = reduce_3sat(f)
        kinds = list(red.kinds.values())
        assert sum(k.startswith("var") for k in kinds) == 6
        assert sum(k.startswith("p") for k in kinds) == 7
        assert red.target == red.num_messages - 3

    def test_variable_pair_overlap(self):
        """The two messages of one variable must collide (slack 0, shared edge)."""
        red = reduce_3sat(CNF.of(3, [(1, 2, 3)]))
        for x, (pos, neg) in red.variable_message_ids.items():
            mp, mn = red.instance[pos], red.instance[neg]
            assert mp.slack == mn.slack == 0
            assert mp.alpha_max == mn.alpha_max  # same forced scan line
            assert max(mp.source, mn.source) < min(mp.dest, mn.dest)  # overlap

    def test_variable_gadget_alone_drops_exactly_v(self):
        red = reduce_3sat(CNF.of(3, []))
        assert red.num_messages == 6
        assert opt_bufferless(red.instance).throughput == 3

    def test_slack_table_matches_paper(self):
        """p_A..p_3 slacks are 5, 3, 1, 2, 1, 3, 1 as the appendix states."""
        red = reduce_3sat(CNF.of(3, [(1, 2, 3)]))
        slack_by_kind = {
            red.kinds[m.id]: m.slack
            for m in red.instance
            if red.kinds[m.id].startswith("p")
        }
        assert slack_by_kind == {
            "pA@0": 5,
            "pB@0": 3,
            "pC@0": 1,
            "pX@0": 2,
            "p1@0": 1,
            "p2@0": 3,
            "p3@0": 1,
        }

    def test_all_messages_feasible_and_in_network(self):
        rng = np.random.default_rng(1)
        f = random_3sat(4, 5, rng)
        red = reduce_3sat(f)
        for m in red.instance:
            assert m.feasible
            assert m.release >= 0
            assert m.source < m.dest


class TestReductionEquivalence:
    """OPT(I(Φ)) == N - v  ⟺  Φ satisfiable (Theorems 3.1 / 5.1)."""

    def test_single_satisfiable_clause(self):
        red = reduce_3sat(CNF.of(3, [(1, -2, 3)]))
        assert opt_bufferless(red.instance).throughput == red.target

    def test_complete_unsat(self):
        red = reduce_3sat(all_patterns_unsat())
        assert opt_bufferless(red.instance).throughput < red.target

    @pytest.mark.parametrize("seed", range(12))
    def test_random_formulas(self, seed):
        rng = np.random.default_rng(8000 + seed)
        f = random_3sat(int(rng.integers(3, 5)), int(rng.integers(1, 6)), rng)
        red = reduce_3sat(f)
        opt = opt_bufferless(red.instance)
        assert (opt.throughput == red.target) == dpll_sat(f)

    @pytest.mark.parametrize("seed", range(4))
    def test_buffering_does_not_help(self, seed):
        """The paper constructs I(Φ) so OPT_B == OPT_BL (Theorem 5.1)."""
        rng = np.random.default_rng(8100 + seed)
        f = random_3sat(3, int(rng.integers(1, 4)), rng)
        red = reduce_3sat(f)
        assert (
            opt_buffered(red.instance).throughput
            == opt_bufferless(red.instance).throughput
        )

    def test_witness_extraction(self):
        rng = np.random.default_rng(5)
        found = 0
        while found < 5:
            f = random_3sat(3, int(rng.integers(1, 5)), rng)
            if not dpll_sat(f):
                continue
            found += 1
            red = reduce_3sat(f)
            schedule = opt_bufferless(red.instance).schedule
            assignment = satisfying_assignment_from_schedule(red, schedule)
            assert assignment is not None
            assert f.satisfied_by(assignment)

    def test_witness_rejects_short_schedule(self):
        red = reduce_3sat(CNF.of(3, [(1, 2, 3)]))
        from repro.core.schedule import Schedule

        assert satisfying_assignment_from_schedule(red, Schedule()) is None
