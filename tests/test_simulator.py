"""Tests for the discrete-time network simulator."""

import numpy as np
import pytest

from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.network import LinearNetworkSimulator, NodeView, Policy, simulate
from repro.network.packet import Packet, PacketStatus

from .conftest import random_lr_instance


class GreedyFIFO(Policy):
    """Forward the packet that has been buffered longest (stable by id)."""

    def select(self, view: NodeView):
        return view.candidates[0] if view.candidates else None


class IdlePolicy(Policy):
    """Never forwards anything — everything must eventually drop."""

    def select(self, view: NodeView):
        return None


class TestPacket:
    def test_lifecycle(self):
        p = Packet(Message(0, 1, 3, 2, 6))
        assert p.status is PacketStatus.PENDING
        assert p.node == 1
        p.status = PacketStatus.IN_NETWORK
        p.record_hop(2)
        assert p.node == 2 and p.status is PacketStatus.IN_NETWORK
        p.record_hop(3)
        assert p.status is PacketStatus.DELIVERED
        assert p.trajectory().crossings == (2, 3)

    def test_laxity_and_deadline(self):
        p = Packet(Message(0, 1, 4, 0, 6))
        assert p.remaining_hops() == 3
        assert p.can_meet_deadline(3) and not p.can_meet_deadline(4)
        assert p.laxity(0) == 3 and p.laxity(3) == 0

    def test_trajectory_requires_delivery(self):
        p = Packet(Message(0, 1, 4, 0, 6))
        with pytest.raises(ValueError, match="not delivered"):
            p.trajectory()


class TestBasicRuns:
    def test_empty_instance(self):
        res = simulate(Instance(4, ()), GreedyFIFO())
        assert res.throughput == 0
        assert res.stats.steps == 0 or res.stats.released == 0

    def test_single_message_travels_straight(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        res = simulate(inst, GreedyFIFO())
        assert res.delivered_ids == {0}
        traj = res.schedule[0]
        assert traj.depart == 2 and traj.bufferless

    def test_rejects_rl(self):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            LinearNetworkSimulator(inst, GreedyFIFO())

    def test_idle_policy_drops_everything(self):
        inst = make_instance(6, [(0, 3, 0, 5), (1, 4, 0, 9)])
        res = simulate(inst, IdlePolicy())
        assert res.throughput == 0
        assert res.dropped_ids == {0, 1}

    def test_infeasible_message_dropped(self):
        inst = make_instance(8, [(0, 6, 0, 3)])
        res = simulate(inst, GreedyFIFO())
        assert res.dropped_ids == {0}

    def test_contention_one_link(self):
        # two packets from the same source, zero slack: one must drop
        inst = make_instance(4, [(0, 3, 0, 3), (0, 3, 0, 3)])
        res = simulate(inst, GreedyFIFO())
        assert res.throughput == 1

    def test_schedule_validates(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            inst = random_lr_instance(rng)
            res = simulate(inst, GreedyFIFO())
            validate_schedule(inst, res.schedule)
            assert res.delivered_ids | res.dropped_ids == set(inst.ids)
            assert not (res.delivered_ids & res.dropped_ids)


class TestStats:
    def test_counters_consistent(self):
        rng = np.random.default_rng(13)
        inst = random_lr_instance(rng, k_lo=5, k_hi=10)
        res = simulate(inst, GreedyFIFO())
        s = res.stats
        assert s.delivered == res.throughput
        assert s.delivered + s.dropped == len(inst)
        assert s.released <= len(inst)
        assert 0.0 <= s.delivery_ratio <= 1.0

    def test_latency_accounts_release_to_arrival(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        res = simulate(inst, GreedyFIFO())
        assert res.stats.mean_latency == 3.0  # span 3, departs at release

    def test_link_utilization(self):
        inst = make_instance(3, [(0, 2, 0, 2)])
        res = simulate(inst, GreedyFIFO())
        util = res.stats.link_utilization(3)
        assert set(util) == {0, 1}
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_peak_buffer_tracked(self):
        # three packets released together at node 0, each needing 1 hop
        inst = make_instance(2, [(0, 1, 0, 9)] * 3)
        res = simulate(inst, GreedyFIFO())
        assert res.throughput == 3
        assert res.stats.peak_buffer[0] == 3


class TestBufferCapacity:
    def test_zero_capacity_forces_bufferless_transit(self):
        # a packet that would need to wait at node 1 is dropped on arrival
        inst = make_instance(
            3,
            [
                (1, 2, 1, 2),  # zero slack: crosses (1,2) during [1,2]
                (0, 2, 0, 9),  # arrives at node 1 at t=1, must wait -> overflow
            ],
        )

        class Second(Policy):
            def select(self, view):
                # prefer the zero-slack packet on link (1,2)
                cands = sorted(view.candidates, key=lambda p: p.laxity(view.time))
                return cands[0] if cands else None

        res = simulate(inst, Second(), buffer_capacity=0)
        assert 0 in res.delivered_ids
        assert 1 in res.dropped_ids
        assert res.stats.buffer_overflow_drops == 1

    def test_source_buffers_exempt(self):
        inst = make_instance(2, [(0, 1, 0, 9)] * 5)
        res = simulate(inst, GreedyFIFO(), buffer_capacity=0)
        assert res.throughput == 5  # all wait at their own source legally

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LinearNetworkSimulator(Instance(4, ()), GreedyFIFO(), buffer_capacity=-1)


class TestPolicyContract:
    def test_policy_must_return_candidate(self):
        class Rogue(Policy):
            def select(self, view):
                return Packet(Message(99, 0, 1, 0, 5))

        inst = make_instance(4, [(0, 2, 0, 9)])
        with pytest.raises(RuntimeError, match="not buffered"):
            simulate(inst, Rogue())

    def test_control_channel_moves_one_hop_per_step(self):
        seen: list[tuple[int, int, object]] = []

        class Tracer(Policy):
            def select(self, view):
                return view.candidates[0] if view.candidates else None

            def emit_control(self, node, time):
                return (node, time)

            def receive_control(self, node, time, value):
                seen.append((node, time, value))

        inst = make_instance(4, [(0, 3, 0, 6)])
        simulate(inst, Tracer())
        for node, time, value in seen:
            origin, emitted_at = value
            assert node == origin + 1
            assert time == emitted_at + 1


class TestIdleFastForward:
    """The run loop jumps over fully idle gaps (see simulator docstring)."""

    @staticmethod
    def _sparse_instance(gap=50_000):
        # two bursts separated by a huge quiet period
        return make_instance(
            6,
            [
                (0, 3, 0, 6),
                (1, 4, 1, 8),
                (0, 5, gap, gap + 9),
                (2, 5, gap + 2, gap + 10),
            ],
        )

    def test_skips_but_delivers_identically(self):
        inst = self._sparse_instance()

        class CountingFIFO(GreedyFIFO):
            calls = 0

            def select(self, view):
                CountingFIFO.calls += 1
                return super().select(view)

        res = simulate(inst, CountingFIFO())
        assert res.throughput == 4
        # without the jump the policy would be polled ~gap * (n-1) times
        assert CountingFIFO.calls < 1_000

        class NoSkipFIFO(GreedyFIFO):
            idle_skippable = False

        reference = simulate(inst, NoSkipFIFO())
        assert res.delivered_ids == reference.delivered_ids
        assert res.schedule == reference.schedule
        assert res.stats.steps == reference.stats.steps

    def test_opt_out_policy_is_stepped_through_gap(self):
        inst = make_instance(4, [(0, 2, 0, 5), (0, 3, 300, 306)])

        class CountingNoSkip(GreedyFIFO):
            idle_skippable = False
            calls = 0

            def select(self, view):
                CountingNoSkip.calls += 1
                return super().select(view)

        res = simulate(inst, CountingNoSkip())
        assert res.throughput == 2
        assert CountingNoSkip.calls > 300  # genuinely polled every step

    def test_tracing_policy_inherits_flag(self):
        from repro.core.dbfl import DBFLPolicy
        from repro.trace.events import TracingPolicy

        assert TracingPolicy(GreedyFIFO()).idle_skippable is True
        assert TracingPolicy(DBFLPolicy()).idle_skippable is False

    def test_dbfl_never_skips_and_stays_correct(self):
        from repro.core.bfl import bfl
        from repro.core.dbfl import dbfl

        inst = self._sparse_instance(gap=200)
        assert dbfl(inst).delivered_ids == bfl(inst).delivered_ids

    def test_random_instances_unchanged_by_skip(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            inst = random_lr_instance(rng, max_release=60)

            class NoSkip(GreedyFIFO):
                idle_skippable = False

            fast = simulate(inst, GreedyFIFO())
            slow = simulate(inst, NoSkip())
            assert fast.schedule == slow.schedule
            assert fast.stats.steps == slow.stats.steps
            assert fast.stats.peak_buffer == slow.stats.peak_buffer
