"""Durability tests: the session WAL and crash-recovery by replay.

The contract under test (PR 8): any arrival batch the server
acknowledged is journaled (fsync-before-ack), recovery is a
deterministic replay of the journaled inputs, and therefore the
recovered finalized-decision prefix is **byte-identical** to the
pre-crash one — across clean restarts, torn journal tails, and crashes
at every batch boundary.
"""

import json

import numpy as np
import pytest

from repro.server.journal import JOURNAL_VERSION, SessionJournal
from repro.server.sessions import OnlineSession, StreamSessions
from repro.workloads import general_instance


def _rows(seed, n=8, k=24):
    """A deterministic release-sorted arrival stream as wire rows."""
    rng = np.random.default_rng(seed)
    inst = general_instance(rng, n=n, k=k, max_release=k // 2, max_slack=6)
    return [
        {
            "id": m.id,
            "source": m.source,
            "dest": m.dest,
            "release": m.release,
            "deadline": m.deadline,
        }
        for m in sorted(inst.messages, key=lambda m: (m.release, m.id))
    ]


def _batches(rows, size):
    return [rows[i : i + size] for i in range(0, len(rows), size)]


def _decision_bytes(decisions):
    return json.dumps([d.to_dict() for d in decisions], sort_keys=True)


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        j.open_session("st-1", n=8, topology="line", policy="bfl", options={})
        j.append_feed("st-1", 0, [{"id": 1}])
        j.append_close("st-1")
        records = j.load("st-1")
        assert [r["op"] for r in records] == ["open", "feed", "close"]
        assert records[0]["v"] == JOURNAL_VERSION
        assert records[1]["seq"] == 0
        assert j.sessions() == ["st-1"]

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        j.open_session("st-1", n=8, topology="line", policy="bfl", options={})
        j.append_feed("st-1", 0, [{"id": 1}])
        with (tmp_path / "st-1.wal").open("a") as fh:
            fh.write('{"op": "feed", "seq": 1, "rows": [{"id"')  # no newline
        records = j.load("st-1")
        assert [r["op"] for r in records] == ["open", "feed"]

    def test_corrupt_line_stops_replay(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        j.open_session("st-1", n=8, topology="line", policy="bfl", options={})
        with (tmp_path / "st-1.wal").open("a") as fh:
            fh.write("not json at all\n")
        j.append_feed("st-1", 0, [{"id": 1}])  # after the corruption
        records = j.load("st-1")
        assert [r["op"] for r in records] == ["open"]

    def test_incompatible_header_is_skipped(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        (tmp_path / "st-9.wal").write_text(
            json.dumps({"op": "open", "v": JOURNAL_VERSION + 1, "n": 8}) + "\n"
        )
        assert j.load("st-9") == []
        assert list(j.replay()) == []

    def test_rejects_hostile_session_ids(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        for sid in ("../escape", "a/b", "", "x" * 65):
            with pytest.raises(ValueError):
                j.open_session(
                    sid, n=8, topology="line", policy="bfl", options={}
                )

    def test_delete_forgets(self, tmp_path):
        j = SessionJournal(tmp_path, fsync=False)
        j.open_session("st-1", n=8, topology="line", policy="bfl", options={})
        j.delete("st-1")
        assert j.sessions() == []
        j.delete("st-1")  # idempotent


class TestSequencedFeeds:
    def test_retry_of_applied_batch_is_exactly_once(self):
        rows = _rows(seed=7)
        batches = _batches(rows, 8)
        session = OnlineSession("st-x", n=8, policy="bfl")
        first, _ = session.feed(batches[0], seq=0)
        second, _ = session.feed(batches[1], seq=1)
        assert session.batches == 2
        # Retrying both acknowledged batches returns the original
        # decisions without re-applying anything.
        again0, _ = session.feed(batches[0], seq=0)
        again1, _ = session.feed(batches[1], seq=1)
        assert _decision_bytes(again0) == _decision_bytes(first)
        assert _decision_bytes(again1) == _decision_bytes(second)
        assert session.batches == 2
        assert session.fed == len(batches[0]) + len(batches[1])

    def test_gap_in_seq_is_rejected(self):
        session = OnlineSession("st-x", n=8, policy="bfl")
        with pytest.raises(ValueError, match="skips ahead"):
            session.feed([], seq=3)

    def test_close_is_idempotent(self):
        rows = _rows(seed=11)
        session = OnlineSession("st-x", n=8, policy="bfl")
        session.feed(_batches(rows, 10)[0], seq=0)
        result1, rest1 = session.close()
        result2, rest2 = session.close()
        assert _decision_bytes(result1.decisions) == _decision_bytes(
            result2.decisions
        )
        assert _decision_bytes(rest1) == _decision_bytes(rest2)
        assert session.closed


class TestRecovery:
    def _feed_all(self, sessions, batches):
        session = sessions.create(n=8, topology="line", policy="bfl")
        for i, batch in enumerate(batches):
            session.feed(batch, seq=i)
        return session

    def test_recover_rebuilds_identical_state(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync=False)
        sessions = StreamSessions(journal=journal)
        batches = _batches(_rows(seed=3), 8)
        live = self._feed_all(sessions, batches)

        # "Crash": a brand-new table over the same journal directory.
        recovered_table = StreamSessions(
            journal=SessionJournal(tmp_path, fsync=False)
        )
        assert recovered_table.recover() == 1
        rec = recovered_table.get(live.session_id)
        assert rec.status() == live.status()
        assert _decision_bytes(rec.decisions()) == _decision_bytes(
            live.decisions()
        )

    def test_recovered_session_continues_and_re_journals(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync=False)
        sessions = StreamSessions(journal=journal)
        batches = _batches(_rows(seed=5), 8)
        live = sessions.create(n=8, topology="line", policy="bfl")
        live.feed(batches[0], seq=0)

        table2 = StreamSessions(journal=SessionJournal(tmp_path, fsync=False))
        table2.recover()
        rec = table2.get(live.session_id)
        rec.feed(batches[1], seq=1)

        # The post-recovery feed was journaled too: a second crash still
        # recovers both batches.
        table3 = StreamSessions(journal=SessionJournal(tmp_path, fsync=False))
        table3.recover()
        assert table3.get(live.session_id).batches == 2

    def test_closed_session_recovers_closed(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync=False)
        sessions = StreamSessions(journal=journal)
        live = sessions.create(n=8, topology="line", policy="bfl")
        live.feed(_batches(_rows(seed=9), 10)[0], seq=0)
        result, _ = live.close()

        table2 = StreamSessions(journal=SessionJournal(tmp_path, fsync=False))
        table2.recover()
        rec = table2.get(live.session_id)
        assert rec.closed
        rec_result, _ = rec.close()
        assert _decision_bytes(rec_result.decisions) == _decision_bytes(
            result.decisions
        )

    def test_unrecoverable_session_is_skipped_not_fatal(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync=False)
        journal.open_session(
            "st-bad", n=8, topology="line", policy="no-such-policy", options={}
        )
        sessions = StreamSessions(journal=SessionJournal(tmp_path, fsync=False))
        assert sessions.recover() == 0
        assert len(sessions) == 0


class TestCrashPointProperty:
    """50 seeded streams x random crash points: the recovered prefix is
    byte-identical to the uncrashed control's, every time."""

    @pytest.mark.timeout(300)
    def test_recovery_prefix_byte_identical(self, tmp_path):
        rng = np.random.default_rng(2024)
        for trial in range(50):
            seed = int(rng.integers(0, 2**31 - 1))
            batch_size = int(rng.integers(3, 9))
            batches = _batches(_rows(seed, n=8, k=20), batch_size)
            crash_after = int(rng.integers(1, len(batches) + 1))

            root = tmp_path / f"trial-{trial}"
            sessions = StreamSessions(journal=SessionJournal(root, fsync=False))
            live = sessions.create(n=8, topology="line", policy="bfl")
            acked = []
            for i, batch in enumerate(batches[:crash_after]):
                new, _ = live.feed(batch, seq=i)
                acked.extend(new)

            # Sometimes the crash also tears the journal tail: chop
            # bytes off the last record — it must cost at most that
            # unacknowledged record, never an acknowledged one.
            wal = root / f"{live.session_id}.wal"
            torn = bool(rng.integers(0, 2))
            if torn:
                raw = wal.read_bytes()
                keep = len(raw) - int(rng.integers(1, 20))
                wal.write_bytes(raw[: max(keep, 0)])

            recovered_table = StreamSessions(
                journal=SessionJournal(root, fsync=False)
            )
            assert recovered_table.recover() == 1, f"trial {trial}"
            rec = recovered_table.get(live.session_id)

            # An uncrashed control fed the same applied batches.
            control = OnlineSession("control", n=8, policy="bfl")
            for i, batch in enumerate(batches[: rec.batches]):
                control.feed(batch, seq=i)

            assert rec.batches <= crash_after, f"trial {trial}"
            if not torn:
                assert rec.batches == crash_after, f"trial {trial}"
            assert rec.status()["frontier"] == control.status()["frontier"]
            assert _decision_bytes(rec.decisions()) == _decision_bytes(
                control.decisions()
            ), f"trial {trial} (seed {seed}, crash after {crash_after})"

            # The decisions the pre-crash client saw acknowledged
            # survive whenever their batches did.
            if rec.batches == crash_after:
                assert _decision_bytes(rec.decisions()) == _decision_bytes(acked)
