"""Tests for the measurement utilities."""

import time

import pytest

from repro.perf import RateMeter, StageClock, Timer, best_of, profile_call, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_time_call_returns_result(self):
        secs, result = time_call(lambda: 42)
        assert result == 42 and secs >= 0

    def test_best_of_minimum(self):
        calls = []

        def fn():
            calls.append(1)

        best = best_of(fn, repeats=4)
        assert len(calls) == 4
        assert best >= 0

    def test_best_of_validates(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)


class TestProfileCall:
    def test_returns_stats_text(self):
        out = profile_call(lambda: sum(range(10_000)), top=5)
        assert "cumulative" in out

    def test_propagates_and_still_disables(self):
        with pytest.raises(RuntimeError):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))


class TestRateMeter:
    def test_counts_and_rates(self):
        meter = RateMeter()
        meter.add(3)
        meter.add()
        time.sleep(0.005)
        meter.stop()
        assert meter.count == 4
        assert meter.elapsed >= 0.004
        assert meter.rate == pytest.approx(4 / meter.elapsed)

    def test_stop_freezes_window(self):
        meter = RateMeter()
        meter.add(10)
        frozen = meter.stop().elapsed
        time.sleep(0.005)
        assert meter.elapsed == frozen

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RateMeter().add(-1)

    def test_report_mentions_unit(self):
        meter = RateMeter()
        meter.add(7)
        report = meter.stop().report("cells")
        assert "7 cells" in report and "cells/s" in report


class TestStageClock:
    def test_accumulates_per_stage(self):
        clock = StageClock()
        for _ in range(3):
            with clock.stage("a"):
                pass
        with clock.stage("b"):
            pass
        assert clock.counts == {"a": 3, "b": 1}
        assert set(clock.totals) == {"a", "b"}

    def test_report_contains_stages(self):
        clock = StageClock()
        with clock.stage("generate"):
            time.sleep(0.002)
        report = clock.report()
        assert "generate" in report and "ms" in report

    def test_empty_report(self):
        assert "no stages" in StageClock().report()

    def test_usable_in_pipeline(self):
        """Representative use: time the stages of a scheduling run."""
        import numpy as np

        from repro.core.bfl import bfl
        from repro.workloads import general_instance

        clock = StageClock()
        with clock.stage("generate"):
            inst = general_instance(np.random.default_rng(0), n=16, k=30)
        with clock.stage("schedule"):
            bfl(inst)
        assert clock.counts["schedule"] == 1
