"""Tests for simulator event tracing."""

from repro.baselines import EDFPolicy
from repro.core.dbfl import DBFLPolicy
from repro.core.instance import make_instance
from repro.network import simulate
from repro.trace.events import TraceEvent, TracingPolicy


class TestTracingPolicy:
    def test_transparent_wrapping(self):
        """Tracing must not change the run's outcome."""
        inst = make_instance(8, [(0, 5, 0, 8), (2, 6, 1, 7), (1, 4, 0, 4)])
        plain = simulate(inst, EDFPolicy())
        traced = simulate(inst, TracingPolicy(EDFPolicy()))
        assert traced.delivered_ids == plain.delivered_ids

    def test_records_lifecycle(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        tracer = TracingPolicy(EDFPolicy())
        simulate(inst, tracer)
        kinds = [e.kind for e in tracer.for_message(0)]
        assert kinds[0] == "release"
        assert kinds.count("forward") == 3
        assert kinds[-1] == "deliver"

    def test_records_drops(self):
        inst = make_instance(4, [(0, 3, 0, 3), (0, 3, 0, 3)])
        tracer = TracingPolicy(EDFPolicy())
        simulate(inst, tracer)
        assert len(tracer.of_kind("drop")) == 1
        assert len(tracer.of_kind("deliver")) == 1

    def test_idle_when_candidates_held(self):
        class Lazy(EDFPolicy):
            def select(self, view):
                # hold everything one step past release
                if view.time == 0:
                    return None
                return super().select(view)

        inst = make_instance(6, [(0, 3, 0, 9)])
        tracer = TracingPolicy(Lazy())
        simulate(inst, tracer)
        idles = tracer.of_kind("idle")
        assert idles and idles[0].time == 0

    def test_control_events_from_dbfl(self):
        inst = make_instance(6, [(0, 4, 0, 8), (1, 5, 0, 9)])
        tracer = TracingPolicy(DBFLPolicy())
        simulate(inst, tracer)
        assert tracer.of_kind("control")  # L values flow

    def test_dbfl_unchanged_under_tracing(self):
        from repro.core.bfl import bfl

        inst = make_instance(8, [(0, 5, 0, 8), (2, 6, 1, 7), (1, 4, 0, 6)])
        traced = simulate(inst, TracingPolicy(DBFLPolicy()))
        assert traced.delivered_ids == bfl(inst).delivered_ids

    def test_reset_clears_events(self):
        inst = make_instance(6, [(0, 3, 0, 9)])
        tracer = TracingPolicy(EDFPolicy())
        simulate(inst, tracer)
        first_count = len(tracer.events)
        simulate(inst, tracer)  # reset() runs inside
        assert len(tracer.events) == first_count

    def test_render_format(self):
        inst = make_instance(6, [(0, 3, 2, 9)])
        tracer = TracingPolicy(EDFPolicy())
        simulate(inst, tracer)
        out = tracer.render(limit=2)
        assert out.startswith("t=2")
        assert "release" in out

    def test_events_chronological(self):
        inst = make_instance(8, [(0, 5, 0, 12), (3, 7, 2, 10)])
        tracer = TracingPolicy(EDFPolicy())
        simulate(inst, tracer)
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
