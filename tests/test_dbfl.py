"""Tests for D-BFL and its Theorem 5.2 equivalence with BFL."""

import numpy as np
import pytest

from repro.core.bfl import bfl
from repro.core.dbfl import DBFLPolicy, dbfl
from repro.core.instance import Instance, make_instance
from repro.core.validate import validate_schedule

from .conftest import random_lr_instance


class TestBasics:
    def test_empty(self):
        assert dbfl(Instance(4, ())).throughput == 0

    def test_single_message(self):
        inst = make_instance(6, [(1, 4, 2, 9)])
        res = dbfl(inst)
        assert res.delivered_ids == {0}
        # same earliest-line behaviour as BFL
        assert res.schedule[0].depart == 2

    def test_valid_buffered_schedule(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            inst = random_lr_instance(rng)
            validate_schedule(inst, dbfl(inst).schedule)


class TestTheorem52:
    """D-BFL(I) == BFL(I): same delivered set, same delivery scan lines."""

    @pytest.mark.parametrize("seed", range(50))
    def test_equivalence_random(self, seed):
        rng = np.random.default_rng(5000 + seed)
        inst = random_lr_instance(rng, n_hi=14, k_hi=12, max_release=10, max_slack=8)
        central = bfl(inst)
        distributed = dbfl(inst)
        assert distributed.delivered_ids == central.delivered_ids
        assert distributed.schedule.delivery_lines() == central.delivery_lines()

    def test_equivalence_paper_example(self, paper_example):
        central = bfl(paper_example)
        distributed = dbfl(paper_example)
        assert distributed.delivered_ids == central.delivered_ids
        assert distributed.schedule.delivery_lines() == central.delivery_lines()

    def test_equivalence_heavy_contention(self):
        # many identical messages: the hardest case for tie-breaking
        inst = make_instance(6, [(0, 5, 0, 8)] * 6 + [(2, 4, 1, 6)] * 3)
        central = bfl(inst)
        distributed = dbfl(inst)
        assert distributed.delivered_ids == central.delivered_ids
        assert distributed.schedule.delivery_lines() == central.delivery_lines()

    def test_equivalence_zero_slack(self):
        rng = np.random.default_rng(77)
        for _ in range(20):
            inst = random_lr_instance(rng, max_slack=0)
            assert dbfl(inst).delivered_ids == bfl(inst).delivered_ids


class TestTieBreakIsLoadBearing:
    """Theorem 5.2 needs BFL's exact selection rule: a D-BFL variant that
    selects by earliest deadline instead of nearest destination diverges
    from BFL on a concrete instance."""

    class _EdfDBFL(DBFLPolicy):
        def select(self, view):
            v = view.node
            l_value = self._l_in[v]
            eligible = [p for p in view.candidates if p.message.source >= l_value]
            chosen = (
                min(eligible, key=lambda p: (p.deadline, p.id)) if eligible else None
            )
            if chosen is not None and chosen.message.dest == v + 1:
                self._l_out[v] = v + 1
            else:
                self._l_out[v] = l_value
            self._l_in[v] = -1
            return chosen

    def test_edf_selection_diverges(self):
        from repro.network import simulate

        inst = make_instance(
            9,
            [
                (5, 7, 7, 9),
                (4, 7, 7, 12),
                (3, 5, 3, 7),
                (5, 8, 0, 7),
                (4, 6, 6, 10),
                (2, 4, 6, 10),
            ],
        )
        variant = simulate(inst, self._EdfDBFL())
        proper = dbfl(inst)
        central = bfl(inst)
        assert proper.delivered_ids == central.delivered_ids
        assert variant.delivered_ids != central.delivered_ids


class TestDistributedCharacter:
    def test_uses_buffers_when_blocked(self):
        # message 1 is blocked by a nearer-destination rival on the early
        # lines; under D-BFL it moves forward and waits rather than idling
        inst = make_instance(
            6,
            [
                (2, 4, 0, 4),  # nearer destination, wins line at node 2
                (0, 4, 0, 8),  # must yield, buffers en route
            ],
        )
        res = dbfl(inst)
        central = bfl(inst)
        assert res.delivered_ids == central.delivered_ids == {0, 1}
        # D-BFL's schedule is buffered in general; BFL's never is
        assert central.bufferless

    def test_policy_reset_between_runs(self):
        inst = make_instance(6, [(0, 3, 0, 5)])
        policy = DBFLPolicy()
        from repro.network import simulate

        first = simulate(inst, policy)
        second = simulate(inst, policy)
        assert first.delivered_ids == second.delivered_ids == {0}

    def test_control_values_fit_log_n_bits(self):
        # the only control value is an L in [-1, n-1]: log n bits as claimed
        inst = make_instance(8, [(0, 7, 0, 12), (3, 6, 1, 9)])
        emitted: list[int] = []

        class Audit(DBFLPolicy):
            def emit_control(self, node, time):
                v = super().emit_control(node, time)
                if v is not None:
                    emitted.append(int(v))
                return v

        from repro.network import simulate

        simulate(inst, Audit())
        assert emitted, "control channel should be exercised"
        assert all(-1 <= v <= 7 for v in emitted)
