"""Tests for the Lemma 4.3 log-span constructive conversion."""

import math

import numpy as np
import pytest

from repro.constructions.log_span_conversion import log_span_conversion
from repro.constructions.span_conversion import ConversionReport
from repro.core.instance import Instance, make_instance
from repro.core.schedule import Schedule
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered

from .conftest import random_lr_instance


def lemma43_factor(instance) -> int:
    return 4 * (math.floor(math.log2(max(instance.max_span, 1))) + 1)


class TestBasics:
    def test_empty_schedule(self):
        inst = Instance(4, ())
        assert log_span_conversion(inst, Schedule()).throughput == 0

    def test_single_message(self):
        inst = make_instance(8, [(1, 5, 0, 9)])
        sched = opt_buffered(inst).schedule
        out = log_span_conversion(inst, sched)
        validate_schedule(inst, out, require_bufferless=True)
        assert out.throughput == 1

    def test_report_fields(self):
        inst = make_instance(8, [(0, 2, 0, 5), (3, 7, 0, 9), (1, 3, 0, 6)])
        sched = opt_buffered(inst).schedule
        rep = log_span_conversion(inst, sched, full_report=True)
        assert isinstance(rep, ConversionReport)
        assert sum(rep.class_sizes) == sched.throughput
        assert rep.dropped == 0

    def test_mixed_spans_are_fine(self):
        """Unlike the Theorem 4.2 conversion, spans may vary freely."""
        inst = make_instance(16, [(0, 1, 0, 4), (2, 10, 0, 12), (11, 15, 0, 18)])
        sched = opt_buffered(inst).schedule
        out = log_span_conversion(inst, sched)
        validate_schedule(inst, out, require_bufferless=True)


class TestLemmaBound:
    @pytest.mark.parametrize("seed", range(25))
    def test_factor_holds_random(self, seed):
        rng = np.random.default_rng(4600 + seed)
        inst = random_lr_instance(rng, n_hi=12, k_hi=9, max_slack=5)
        buffered = opt_buffered(inst)
        if buffered.throughput == 0:
            return
        rep = log_span_conversion(inst, buffered.schedule, full_report=True)
        validate_schedule(inst, rep.schedule, require_bufferless=True)
        assert rep.throughput * lemma43_factor(inst) >= buffered.throughput
        assert rep.dropped == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_factor_holds_dense(self, seed):
        rng = np.random.default_rng(4700 + seed)
        inst = random_lr_instance(
            rng, n_lo=6, n_hi=8, k_lo=8, k_hi=12, max_slack=2, max_release=3
        )
        buffered = opt_buffered(inst)
        if buffered.throughput == 0:
            return
        rep = log_span_conversion(inst, buffered.schedule, full_report=True)
        assert rep.throughput * lemma43_factor(inst) >= buffered.throughput

    def test_buckets_respect_powers_of_two(self):
        """All kept messages share one ⌊log₂ span⌋ level."""
        inst = make_instance(
            20,
            [(0, 2, 0, 9), (3, 5, 0, 12), (6, 14, 0, 20), (15, 19, 0, 25)],
        )
        sched = opt_buffered(inst).schedule
        out = log_span_conversion(inst, sched)
        levels = {math.floor(math.log2(t.span)) for t in out}
        assert len(levels) <= 1
