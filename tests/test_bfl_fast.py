"""Equivalence tests: vectorised BFL vs the reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bfl import bfl
from repro.core.bfl_fast import bfl_fast
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.workloads import general_instance

from .conftest import lr_instances, random_lr_instance


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(30))
    def test_identical_output_random(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_lr_instance(rng, k_hi=12, max_slack=8)
        ref = bfl(inst)
        fast = bfl_fast(inst)
        assert fast.delivered_ids == ref.delivered_ids
        assert fast.delivery_lines() == ref.delivery_lines()

    @settings(max_examples=60, deadline=None)
    @given(lr_instances(max_messages=8))
    def test_identical_output_property(self, inst: Instance):
        ref = bfl(inst)
        fast = bfl_fast(inst)
        assert fast.delivered_ids == ref.delivered_ids
        assert fast.delivery_lines() == ref.delivery_lines()

    @settings(max_examples=60, deadline=None)
    @given(lr_instances(max_messages=8, max_slack=10))
    def test_bit_identical_property(self, inst: Instance):
        """Same Schedule object — trajectory tuples in the same order."""
        assert bfl_fast(inst) == bfl(inst)

    @settings(max_examples=40, deadline=None)
    @given(lr_instances(max_messages=8))
    def test_bit_identical_clip_slack_property(self, inst: Instance):
        assert bfl_fast(inst, clip_slack=True) == bfl(inst, clip_slack=True)

    @settings(max_examples=40, deadline=None)
    @given(lr_instances(max_messages=10, max_release=0, max_slack=0))
    def test_bit_identical_degenerate_windows(self, inst: Instance):
        """Zero slack + simultaneous release: every window is exactly tight."""
        assert bfl_fast(inst) == bfl(inst)
        assert bfl_fast(inst, clip_slack=True) == bfl(inst, clip_slack=True)

    def test_identical_on_paper_example(self, paper_example):
        assert (
            bfl_fast(paper_example).delivery_lines()
            == bfl(paper_example).delivery_lines()
        )

    def test_clip_slack_path(self):
        inst = Instance(8, (Message(0, 0, 3, 0, 500), Message(1, 2, 6, 1, 400)))
        fast = bfl_fast(inst, clip_slack=True)
        validate_schedule(inst, fast, require_bufferless=True)
        assert fast.throughput == bfl(inst, clip_slack=True).throughput


class TestBasics:
    def test_empty(self):
        assert bfl_fast(Instance(4, ())).throughput == 0

    def test_rejects_rl(self):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            bfl_fast(inst)

    def test_infeasible_dropped(self):
        inst = Instance(8, (Message(0, 0, 6, 0, 3),))
        assert bfl_fast(inst).throughput == 0

    def test_valid_on_large_instance(self):
        rng = np.random.default_rng(9)
        inst = general_instance(rng, n=64, k=500, max_release=40, max_slack=12)
        fast = bfl_fast(inst)
        validate_schedule(inst, fast, require_bufferless=True)
        assert fast.delivered_ids == bfl(inst).delivered_ids
