"""Tests for the sweep engine: result cache, process pool, determinism."""

import os
import pickle

import numpy as np
import pytest

from repro.core.bfl_fast import bfl_fast
from repro.core.instance import Instance
from repro.core.message import Message
from repro.engine import (
    CacheStats,
    ResultCache,
    cached_bfl,
    resolve_jobs,
    run_tasks,
    spawn_rngs,
    spawn_seeds,
)
from repro.engine import cache as cache_mod
from repro.workloads import general_instance


def _inst(seed=0, n=10, k=6):
    return general_instance(np.random.default_rng(seed), n=n, k=k)


# --------------------------------------------------------------------- #
# Content hashing
# --------------------------------------------------------------------- #


class TestContentHash:
    def test_order_independent(self):
        a = Message(0, 0, 3, 0, 5)
        b = Message(1, 2, 6, 1, 9)
        assert Instance(8, (a, b)).content_hash == Instance(8, (b, a)).content_hash

    def test_sensitive_to_fields(self):
        base = Instance(8, (Message(0, 0, 3, 0, 5),))
        assert base.content_hash != Instance(9, (Message(0, 0, 3, 0, 5),)).content_hash
        assert base.content_hash != Instance(8, (Message(0, 0, 3, 0, 6),)).content_hash

    def test_stable_across_objects(self):
        assert _inst(3).content_hash == _inst(3).content_hash


# --------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_memoizes(self):
        cache = ResultCache()
        inst = _inst()
        calls = []

        def solver(instance, **params):
            calls.append(1)
            return bfl_fast(instance)

        first = cache.call("bfl", solver, inst)
        second = cache.call("bfl", solver, inst)
        assert first == second and len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_params_distinguish_entries(self):
        cache = ResultCache()
        inst = _inst()
        cache.call("bfl", lambda i, **p: bfl_fast(i, **p), inst, clip_slack=False)
        cache.call("bfl", lambda i, **p: bfl_fast(i, **p), inst, clip_slack=True)
        assert cache.stats.misses == 2

    def test_disk_persistence(self, tmp_path):
        inst = _inst()
        first = ResultCache(directory=tmp_path)
        result = first.call("bfl", lambda i, **p: bfl_fast(i), inst)
        # a fresh cache object (fresh process, in spirit) finds it on disk
        second = ResultCache(directory=tmp_path)
        assert second.call("bfl", lambda i, **p: bfl_fast(i), inst) == result
        assert second.stats.hits == 1 and second.stats.misses == 0

    def test_disk_files_are_pickles(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.call("bfl", lambda i, **p: bfl_fast(i), _inst())
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        with open(files[0], "rb") as fh:
            pickle.load(fh)  # loads cleanly

    def test_clear(self):
        cache = ResultCache()
        inst = _inst()
        cache.call("bfl", lambda i, **p: bfl_fast(i), inst)
        cache.clear()
        assert cache.memory == {} and cache.stats.total == 0
        cache.call("bfl", lambda i, **p: bfl_fast(i), inst)
        assert cache.stats.misses == 1  # recomputed, not served from memory

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setattr(cache_mod, "_default", None)
        inst = _inst()
        cache = cache_mod.default_cache()
        assert cache.enabled is False
        assert cached_bfl(inst) == bfl_fast(inst)
        assert cache.stats.total == 0  # bypassed entirely
        monkeypatch.setattr(cache_mod, "_default", None)  # don't leak to other tests


class TestCacheStats:
    def test_snapshot_delta(self):
        stats = CacheStats()
        stats.hits, stats.misses = 3, 1
        snap = stats.snapshot()
        stats.hits, stats.misses = 5, 4
        delta = stats.since(snap)
        assert (delta.hits, delta.misses) == (2, 3)

    def test_merge_and_footnote(self):
        total = CacheStats()
        part = CacheStats()
        part.hits, part.misses = 3, 1
        total.merge(part)
        total.merge(part)
        assert (total.hits, total.misses) == (6, 2)
        assert "6 hits" in total.footnote() and "75%" in total.footnote()


# --------------------------------------------------------------------- #
# Pool
# --------------------------------------------------------------------- #


def _affine(x, offset):
    return x * x + offset


class TestRunTasks:
    def test_serial_matches_input_order(self):
        results, stats = run_tasks(_affine, [(i, 0) for i in range(6)], jobs=1)
        assert results == [0, 1, 4, 9, 16, 25]
        assert isinstance(stats, CacheStats)

    def test_parallel_matches_serial(self):
        argslist = [(i, 1) for i in range(20)]
        serial, _ = run_tasks(_affine, argslist, jobs=1)
        parallel, _ = run_tasks(_affine, argslist, jobs=4)
        assert parallel == serial

    def test_resolve_jobs(self, monkeypatch):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(None) == 7
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_spawn_seeds_deterministic(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert [(s.entropy, s.spawn_key) for s in a] == [
            (s.entropy, s.spawn_key) for s in b
        ]
        draws = [int(rng.integers(0, 1 << 30)) for rng in spawn_rngs(42, 5)]
        assert len(set(draws)) == 5  # streams are independent


# --------------------------------------------------------------------- #
# End to end: engine-backed experiments are job-count invariant
# --------------------------------------------------------------------- #


class TestEngineExperiments:
    def test_e12_identical_across_job_counts(self):
        from repro.experiments import e12_load_sweep

        serial = e12_load_sweep.run(seed=7, trials=2, jobs=1)
        parallel = e12_load_sweep.run(seed=7, trials=2, jobs=4)
        assert parallel.rows == serial.rows

    def test_e2_identical_across_job_counts(self):
        from repro.experiments import e2_bfl_ratio

        serial = e2_bfl_ratio.run(seed=7, trials=2, jobs=1)
        parallel = e2_bfl_ratio.run(seed=7, trials=2, jobs=4)
        assert parallel.rows == serial.rows

    def test_footnote_reports_cache_traffic(self):
        from repro.experiments import e2_bfl_ratio

        table = e2_bfl_ratio.run(seed=7, trials=2, jobs=1)
        rendered = table.render()
        assert "solver cache:" in rendered
