"""Tests for weighted-throughput objectives in the exact solvers."""

import numpy as np
import pytest

from repro.core.instance import make_instance
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered, opt_bufferless

from .conftest import random_lr_instance


@pytest.fixture
def conflict_pair():
    """Two zero-slack messages sharing a link: exactly one can win."""
    return make_instance(8, [(0, 4, 0, 4), (2, 6, 2, 6)])


class TestWeightedBufferless:
    def test_weights_flip_the_winner(self, conflict_pair):
        light = opt_bufferless(conflict_pair, weights={0: 1.0, 1: 5.0})
        assert light.schedule.delivered_ids == {1}
        heavy = opt_bufferless(conflict_pair, weights={0: 5.0, 1: 1.0})
        assert heavy.schedule.delivered_ids == {0}

    def test_default_weight_is_one(self, conflict_pair):
        # only message 1 weighted: beats the implicit weight-1 rival
        res = opt_bufferless(conflict_pair, weights={1: 2.0})
        assert res.schedule.delivered_ids == {1}

    def test_uniform_weights_match_unweighted(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            inst = random_lr_instance(rng, k_hi=6, max_slack=4)
            plain = opt_bufferless(inst).throughput
            weighted = opt_bufferless(
                inst, weights={m.id: 3.0 for m in inst}
            ).throughput
            assert plain == weighted

    def test_rejects_nonpositive_weights(self, conflict_pair):
        with pytest.raises(ValueError, match="positive"):
            opt_bufferless(conflict_pair, weights={0: 0.0})

    def test_weighted_schedule_still_valid(self):
        rng = np.random.default_rng(1)
        inst = random_lr_instance(rng, k_hi=6, max_slack=4)
        rng2 = np.random.default_rng(2)
        weights = {m.id: float(rng2.uniform(0.5, 3.0)) for m in inst}
        res = opt_bufferless(inst, weights=weights)
        validate_schedule(inst, res.schedule, require_bufferless=True)


class TestWeightedBuffered:
    def test_weights_flip_the_winner(self, conflict_pair):
        res = opt_buffered(conflict_pair, weights={0: 1.0, 1: 5.0})
        assert 1 in res.schedule.delivered_ids

    def test_rejects_nonpositive_weights(self, conflict_pair):
        with pytest.raises(ValueError, match="positive"):
            opt_buffered(conflict_pair, weights={1: -1.0})

    def test_weighted_value_dominates_count(self):
        """One heavy long message beats two light short ones."""
        inst = make_instance(
            10,
            [
                (0, 8, 0, 8),  # the heavy message
                (0, 4, 0, 4),
                (4, 8, 4, 8),
            ],
        )
        unweighted = opt_buffered(inst)
        assert unweighted.throughput == 2  # count prefers the two shorts
        weighted = opt_buffered(inst, weights={0: 10.0})
        assert 0 in weighted.schedule.delivered_ids

    def test_multimedia_priority_scenario(self):
        """Audio (weight 4) wins its link against bulk (weight 1)."""
        inst = make_instance(6, [(0, 3, 0, 3), (1, 4, 1, 4)])
        weights = {0: 4.0, 1: 1.0}  # 0 = audio, 1 = bulk
        res = opt_buffered(inst, weights=weights)
        assert 0 in res.schedule.delivered_ids
