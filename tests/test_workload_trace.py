"""Workload traces (PR9): format, shapes, record/replay, spec, loadtest.

The acceptance spine lives here:

* **replay determinism** — recording a seeded online run and replaying
  it through ``api.solve(regime="online")`` *and* a live server's stream
  endpoints reproduces the identical decision log (byte-identical
  ``StreamResult.to_dict``), asserted for line and ring;
* **streaming scale** — the disk writer/reader pair is byte-faithful to
  the in-memory generator, and peak memory is bounded independent of
  trace length (``tracemalloc``); the million-message sustained run is
  gated behind ``REPRO_LOADTEST_FULL=1`` on the ``loadtest`` marker's
  slow tier;
* **schema negotiation** — ScheduleResult v4 / StreamResult v2 carry the
  optional ``workload`` provenance block and still accept every earlier
  version.
"""

from __future__ import annotations

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro import api, trace
from repro.online import StreamResult, run_online
from repro.trace import (
    TraceReader,
    TraceRecord,
    TraceRecorder,
    TraceWriter,
    WorkloadTrace,
    record_online,
    replay,
    replay_online,
    replay_served,
    replay_windows,
    run_loadtest,
    shape_trace,
    write_shape_trace,
    write_trace,
)
from repro.workloads import WorkloadSpec, general_instance, generate

FULL = os.environ.get("REPRO_LOADTEST_FULL") == "1"


@pytest.fixture(scope="module")
def line_trace():
    return shape_trace("bursty", 7, n=16, messages=120)


@pytest.fixture(scope="module")
def ring_trace():
    return shape_trace("hotspot", 11, n=10, messages=60, topology="ring")


@pytest.fixture(scope="module")
def server():
    from repro.server import ReproServer

    srv = ReproServer(port=0, jobs=1).start_in_thread()
    yield srv
    srv.shutdown()


@pytest.fixture(scope="module")
def client(server):
    from repro.client import ReproClient

    with ReproClient(server.url, retries=0) as c:
        yield c


# --------------------------------------------------------------------- #
# Format
# --------------------------------------------------------------------- #


class TestFormat:
    def test_record_round_trip(self):
        rec = TraceRecord(id=3, source=1, dest=5, release=2, deadline=9)
        assert TraceRecord.from_dict(rec.to_dict()) == rec
        assert json.loads(rec.to_json()) == rec.to_dict()

    def test_trace_validates_release_order(self):
        recs = (
            TraceRecord(id=0, source=0, dest=1, release=5, deadline=9),
            TraceRecord(id=1, source=0, dest=1, release=2, deadline=9),
        )
        with pytest.raises(ValueError, match="release"):
            WorkloadTrace(trace_id="tr-x", n=4, records=recs)

    def test_write_read_round_trip(self, tmp_path, line_trace):
        path = tmp_path / "t.jsonl"
        write_trace(path, line_trace)
        back = trace.read_trace(path)
        assert back.records == line_trace.records
        assert back.provenance() == line_trace.provenance()
        assert back.n == line_trace.n and back.topology == line_trace.topology

    def test_header_count_patched_on_close(self, tmp_path, line_trace):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path, n=line_trace.n, trace_id="tr-count") as w:
            w.add_many(line_trace.records)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["count"] == len(line_trace.records)

    def test_writer_deletes_file_on_exception(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, n=8, trace_id="tr-boom") as w:
                w.add(TraceRecord(id=0, source=0, dest=1, release=0, deadline=4))
                raise RuntimeError("boom")
        assert not path.exists()

    def test_instance_round_trip(self, line_trace):
        inst = line_trace.to_instance()
        assert len(inst) == len(line_trace.records)
        back = WorkloadTrace.from_instance(inst, trace_id=line_trace.trace_id)
        assert {(r.id, r.release) for r in back.records} == {
            (r.id, r.release) for r in line_trace.records
        }

    def test_reader_rejects_future_version(self, tmp_path, line_trace):
        path = tmp_path / "t.jsonl"
        write_trace(path, line_trace)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = trace.TRACE_VERSION + 1
        path.write_text("\n".join([json.dumps(header), *lines[1:]]) + "\n")
        with pytest.raises(ValueError, match="version"):
            trace.read_trace(path)


# --------------------------------------------------------------------- #
# Shapes: determinism + disk/memory byte-identity + bounded memory
# --------------------------------------------------------------------- #


class TestShapes:
    @pytest.mark.parametrize("shape", sorted(trace.SHAPES))
    def test_seeded_determinism(self, shape):
        a = shape_trace(shape, 3, n=12, messages=200, trace_id="tr-a")
        b = shape_trace(shape, 3, n=12, messages=200, trace_id="tr-a")
        assert a.records == b.records
        c = shape_trace(shape, 4, n=12, messages=200, trace_id="tr-a")
        assert a.records != c.records

    @pytest.mark.parametrize("shape", sorted(trace.SHAPES))
    @pytest.mark.parametrize("seed", [0, 17])
    def test_disk_stream_matches_memory(self, tmp_path, shape, seed):
        """Property: the streaming writer/reader pair is byte-faithful."""
        mem = shape_trace(shape, seed, n=16, messages=500, trace_id="tr-p")
        path = tmp_path / f"{shape}-{seed}.jsonl"
        count = write_shape_trace(
            path, shape, seed, n=16, messages=500, trace_id="tr-p"
        )
        assert count == len(mem.records)
        with trace.open_trace(path) as reader:
            disk = tuple(reader)
        assert disk == mem.records
        # byte-level: re-serializing the in-memory records reproduces the
        # file's record lines exactly.
        lines = path.read_text().splitlines()[1:]
        assert lines == [r.to_json() for r in mem.records]

    def test_release_order_nondecreasing(self):
        for shape in trace.SHAPES:
            t = shape_trace(shape, 5, n=12, messages=300)
            rel = [r.release for r in t.records]
            assert rel == sorted(rel)

    def test_bounded_memory_streaming(self, tmp_path):
        """Peak traced memory is independent of trace length."""

        def peak(messages: int) -> int:
            path = tmp_path / f"m{messages}.jsonl"
            tracemalloc.start()
            write_shape_trace(path, "bursty", 1, n=16, messages=messages)
            with trace.open_trace(path) as reader:
                total = sum(1 for _ in reader)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert total == messages
            return high

        # 4x the records should not mean 4x the memory: generation is
        # chunked and the reader never materializes the file.
        small, large = peak(15_000), peak(60_000)
        assert large < small * 2 + 1_000_000

    @pytest.mark.loadtest
    @pytest.mark.slow
    @pytest.mark.timeout(600)
    @pytest.mark.skipif(not FULL, reason="REPRO_LOADTEST_FULL=1 unlocks")
    def test_million_message_trace(self, tmp_path):
        """1M messages generate, write, and replay with bounded memory."""
        path = tmp_path / "million.jsonl"
        tracemalloc.start()
        count = write_shape_trace(path, "bursty", 9, n=32, messages=1_000_000)
        report = replay_windows(path, window=50_000)
        _, high = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == report["messages"] == 1_000_000
        assert report["delivered"] > 0
        assert high < 400 * 1024 * 1024


# --------------------------------------------------------------------- #
# Record + replay determinism (the acceptance criterion)
# --------------------------------------------------------------------- #


class TestReplayDeterminism:
    def test_record_then_facade_replay_line(self):
        rng = np.random.default_rng(21)
        inst = general_instance(rng, n=12, k=30, max_release=10, max_slack=5)
        recorded_trace, original = record_online(inst, "bfl", shape="recorded", seed=21)
        result = replay(recorded_trace, "online", "bfl")
        assert result.workload == recorded_trace.provenance()
        assert result.stream is not None
        assert result.stream.to_dict() == original.to_dict()

    @pytest.mark.parametrize(
        "fixture,policy",
        [("line_trace", "bfl"), ("line_trace", "dbfl"), ("ring_trace", "greedy")],
    )
    def test_replay_online_is_stable(self, request, fixture, policy):
        t = request.getfixturevalue(fixture)
        a = replay_online(t, policy).to_dict()
        b = replay_online(t, policy).to_dict()
        assert a == b
        assert a["workload"] == t.provenance()

    @pytest.mark.parametrize(
        "fixture,policy,batch",
        [
            ("line_trace", "bfl", 16),
            ("line_trace", "bfl", 7),
            ("ring_trace", "greedy", 16),
        ],
    )
    def test_served_replay_byte_identical(self, request, client, fixture, policy, batch):
        """HTTP stream replay == local replay, decision log included."""
        t = request.getfixturevalue(fixture)
        local = replay_online(t, policy)
        served = replay_served(t, client, policy=policy, batch_size=batch)
        assert served.to_dict() == local.to_dict()

    def test_facade_replay_from_disk(self, tmp_path, line_trace):
        path = tmp_path / "t.jsonl"
        write_trace(path, line_trace)
        from_disk = replay(str(path), "online", "bfl")
        from_mem = replay(line_trace, "online", "bfl")
        assert from_disk.stream.to_dict() == from_mem.stream.to_dict()

    def test_replay_windows_aggregates(self, line_trace):
        windowed = replay_windows(line_trace, window=40)
        assert windowed["messages"] == len(line_trace.records)
        # batches extend past the nominal size rather than split a
        # release instant, so the window count is at most ceil(n/size)
        assert 0 < windowed["windows"] <= -(-len(line_trace.records) // 40)
        assert 0 < windowed["delivered"] <= windowed["messages"]
        assert windowed["workload"] == line_trace.provenance()
        # one giant window == the un-windowed solve
        whole = api.solve(line_trace.to_instance(), "bufferless", "bfl")
        one = replay_windows(line_trace, window=10**6)
        assert one["delivered"] == whole.delivered and one["windows"] == 1


class TestRecorder:
    def test_recorder_matches_record_instance(self):
        rng = np.random.default_rng(5)
        inst = general_instance(rng, n=10, k=12)
        arrivals = sorted(inst, key=lambda m: (m.release, m.id))
        rec = TraceRecorder(n=10, trace_id="tr-r", shape="manual", seed=5)
        rec.add_many(arrivals)
        t = rec.trace()
        direct = trace.record_instance(inst, trace_id="tr-r", shape="manual", seed=5)
        assert t.records == direct.records
        assert t.provenance() == direct.provenance()

    def test_disk_recorder(self, tmp_path):
        rng = np.random.default_rng(6)
        inst = general_instance(rng, n=10, k=12)
        path = tmp_path / "rec.jsonl"
        with TraceRecorder(n=10, trace_id="tr-d", path=path) as rec:
            rec.add_many(sorted(inst, key=lambda m: (m.release, m.id)))
        assert trace.read_trace(path).records == trace.record_instance(
            inst, trace_id="tr-d"
        ).records

    def test_client_stream_recorder(self, client, line_trace):
        """open_stream(recorder=...) captures exactly the fed arrivals."""
        rec = TraceRecorder(
            n=line_trace.n, trace_id=line_trace.trace_id,
            shape=line_trace.shape, seed=line_trace.seed,
        )
        with client.open_stream(
            n=line_trace.n, policy="bfl", recorder=rec
        ) as stream:
            for rows in _chunks(line_trace.records, 25):
                stream.feed([r.to_dict() for r in rows])
            stream.close()
        assert rec.trace().records == line_trace.records


def _chunks(records, size):
    out = []
    for rec in records:
        if len(out) >= size and rec.release != out[-1].release:
            yield out
            out = []
        out.append(rec)
    if out:
        yield out


# --------------------------------------------------------------------- #
# Schema negotiation: ScheduleResult v4, StreamResult v2
# --------------------------------------------------------------------- #


class TestProvenanceSchema:
    def test_solve_stamps_workload(self, line_trace):
        result = replay(line_trace, "online", "bfl")
        payload = result.to_dict()
        assert payload["version"] == 5
        assert payload["workload"] == line_trace.provenance()
        back = api.ScheduleResult.from_dict(payload)
        assert back.workload == result.workload

    def test_workload_absent_by_default(self):
        rng = np.random.default_rng(2)
        inst = general_instance(rng, n=8, k=6)
        payload = api.solve(inst, "bufferless", "bfl").to_dict()
        assert "workload" not in payload

    def test_solve_rejects_non_dict_workload(self):
        rng = np.random.default_rng(2)
        inst = general_instance(rng, n=8, k=6)
        with pytest.raises(ValueError, match="workload"):
            api.solve(inst, "bufferless", "bfl", workload="bursty")

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_schedule_result_accepts_old_versions(self, version):
        rng = np.random.default_rng(3)
        inst = general_instance(rng, n=8, k=6)
        payload = api.solve(inst, "bufferless", "bfl").to_dict()
        payload["version"] = version
        payload.pop("workload", None)
        back = api.ScheduleResult.from_dict(payload)
        assert back.delivered == payload["delivered"]
        assert back.workload is None

    def test_schedule_result_rejects_future_version(self):
        rng = np.random.default_rng(3)
        inst = general_instance(rng, n=8, k=6)
        payload = api.solve(inst, "bufferless", "bfl").to_dict()
        payload["version"] = api.ScheduleResult.SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            api.ScheduleResult.from_dict(payload)

    def test_stream_result_v2_round_trip(self, line_trace):
        result = replay_online(line_trace, "bfl")
        payload = result.to_dict()
        assert payload["version"] == 2
        assert payload["workload"] == line_trace.provenance()
        back = StreamResult.from_dict(payload)
        assert back.to_dict() == payload

    def test_stream_result_accepts_v1(self, line_trace):
        payload = replay_online(line_trace, "bfl").to_dict()
        payload["version"] = 1
        payload.pop("workload")
        back = StreamResult.from_dict(payload)
        assert back.workload is None
        assert back.throughput == payload["throughput"]

    def test_plain_run_online_has_no_workload(self, line_trace):
        result = run_online(line_trace.to_instance(), "bfl")
        assert "workload" not in result.to_dict()


# --------------------------------------------------------------------- #
# WorkloadSpec: the unified generator entrypoint
# --------------------------------------------------------------------- #


class TestWorkloadSpec:
    @pytest.mark.parametrize(
        "spec,legacy",
        [
            (
                WorkloadSpec("general", seed=7, n=16, k=20),
                lambda: general_instance(7, n=16, k=20),
            ),
            (
                WorkloadSpec("ring_random", seed=9, n=10, k=15),
                lambda: __import__(
                    "repro.workloads.rings", fromlist=["random_ring_instance"]
                ).random_ring_instance(9, n=10, k=15),
            ),
        ],
    )
    def test_seeded_parity_with_legacy(self, spec, legacy):
        assert generate(spec) == legacy()

    def test_dict_round_trip(self):
        spec = WorkloadSpec("hotspot", seed=3, n=12, k=18, params={"width": 2})
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec
        assert generate(spec.to_dict()) == generate(spec)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="family"):
            WorkloadSpec("fractal")

    def test_count_rejected_where_fixed(self):
        with pytest.raises(ValueError, match="k="):
            WorkloadSpec("saturated", seed=1, n=8, k=5).generate()

    def test_shape_family_matches_shape_trace(self):
        spec = WorkloadSpec("shape:bursty", seed=7, n=16, k=120)
        inst = generate(spec)
        direct = shape_trace("bursty", 7, n=16, messages=120).to_instance()
        assert {(m.id, m.release) for m in inst} == {
            (m.id, m.release) for m in direct
        }

    def test_spec_trace_carries_provenance(self):
        spec = WorkloadSpec("general", seed=4, n=10, k=8)
        t = spec.trace()
        assert t.shape == "general" and t.seed == 4
        assert t.spec == spec.to_dict()


# --------------------------------------------------------------------- #
# Experiments: trace= config
# --------------------------------------------------------------------- #


class TestExperimentWiring:
    def test_e15_trace_column(self):
        from repro.experiments import e15_faults

        table = e15_faults.run(seed=3, trials=1, trace="bursty")
        assert table.columns[0] == "workload"
        assert all(row["workload"] == "bursty" for row in table.rows)

    def test_e16_trace_rows_per_source(self, tmp_path, line_trace):
        from repro.experiments import e16_online

        path = tmp_path / "wl.jsonl"
        write_trace(path, line_trace)
        table = e16_online.run(seed=3, trials=1, trace=("diurnal", str(path)))
        assert [row["workload"] for row in table.rows] == ["diurnal", "wl"]

    def test_default_table_shape_unchanged(self):
        from repro.experiments import e16_online

        table = e16_online.run(seed=3, trials=1)
        assert table.columns == ["load", "slack", "messages", "bfl", "dbfl", "greedy"]

    def test_bad_trace_config_raises(self):
        from repro.errors import ConfigError
        from repro.experiments import e15_faults

        with pytest.raises(ConfigError, match="neither a traffic shape"):
            e15_faults.run(seed=3, trials=1, trace="no-such-shape-or-file")


# --------------------------------------------------------------------- #
# Loadtest harness
# --------------------------------------------------------------------- #


@pytest.mark.loadtest
class TestLoadtest:
    def test_stream_mode_fast(self, server, line_trace):
        report = run_loadtest(
            line_trace, server.url, mode="stream", policy="bfl", batch_size=32
        )
        assert report["fed"] == report["messages"] == len(line_trace.records)
        assert report["shed"] == {"429": 0, "504": 0}
        assert report["decisions"] == len(line_trace.records)
        assert report["workload"] == line_trace.provenance()
        local = replay_online(line_trace, "bfl")
        assert report["throughput"] == local.throughput

    def test_solve_mode_fast(self, server, line_trace):
        report = run_loadtest(
            line_trace, server.url, mode="solve", window=50
        )
        assert report["solved"] == report["requests"]
        assert report["messages"] == len(line_trace.records)
        assert report["delivered"] > 0

    def test_latency_summary_percentiles(self):
        summary = trace.latency_summary([0.001 * i for i in range(1, 101)])
        assert summary["p50_ms"] == pytest.approx(50.0, abs=2.0)
        assert summary["p99_ms"] == pytest.approx(99.0, abs=2.0)
        assert summary["max_ms"] == pytest.approx(100.0)

    def test_validates_arguments(self, line_trace):
        with pytest.raises(ValueError, match="mode"):
            run_loadtest(line_trace, "http://x", mode="teleport")
        with pytest.raises(ValueError, match="rate"):
            run_loadtest(line_trace, "http://x", rate=0)
        with pytest.raises(ValueError, match="exactly one"):
            run_loadtest(line_trace)

    @pytest.mark.slow
    @pytest.mark.timeout(600)
    @pytest.mark.skipif(not FULL, reason="REPRO_LOADTEST_FULL=1 unlocks")
    def test_sustained_rate_run(self, server):
        """A paced 20k-message replay sustains its target rate."""
        t = shape_trace("diurnal", 13, n=32, messages=20_000)
        report = run_loadtest(
            t, server.url, mode="stream", rate=5_000.0, batch_size=100
        )
        assert report["fed"] == 20_000
        # open-loop: the achieved rate is capped by server throughput,
        # which varies by machine — assert a loose floor plus liveness.
        assert report["rate_achieved"] > 100
        assert report["latency"]["p99_ms"] < 60_000
