"""Tests for the mesh model, XY scheduler, and validator."""

import numpy as np
import pytest

from repro.baselines import edf_bufferless
from repro.topology.mesh import MeshInstance, MeshMessage, make_mesh_instance, xy_schedule
from repro.topology.mesh import MeshSchedule, MeshTrajectory
from repro.topology.mesh import mesh_schedule_problems, validate_mesh_schedule
from repro.workloads.meshes import mesh_hotspot, random_mesh_instance, transpose_mesh


def rng(seed=0):
    return np.random.default_rng(seed)


class TestMeshModel:
    def test_spans_and_turning(self):
        m = MeshMessage(0, (1, 2), (3, 5), 0, 20)
        assert m.row_span == 3 and m.col_span == 2 and m.span == 5
        assert m.turning_node == (1, 5)
        assert m.slack == 15

    def test_validation(self):
        with pytest.raises(ValueError, match="source == dest"):
            MeshMessage(0, (1, 1), (1, 1), 0, 5)
        with pytest.raises(ValueError, match="bad time window"):
            MeshMessage(0, (0, 0), (1, 1), 5, 3)
        with pytest.raises(ValueError, match="off the mesh"):
            MeshInstance(3, 3, (MeshMessage(0, (0, 0), (4, 1), 0, 9),))
        with pytest.raises(ValueError, match="duplicate"):
            MeshInstance(
                3,
                3,
                (
                    MeshMessage(0, (0, 0), (1, 1), 0, 9),
                    MeshMessage(0, (0, 1), (1, 2), 0, 9),
                ),
            )

    def test_make_mesh_instance_ids(self):
        inst = make_mesh_instance(3, 3, [((0, 0), (2, 2), 0, 9), ((1, 0), (1, 2), 0, 6)])
        assert inst[0].span == 4 and inst[1].row_span == 2

    def test_trajectory_needs_a_leg(self):
        with pytest.raises(ValueError, match="at least one leg"):
            MeshTrajectory(0, None, None, 0)

    def test_schedule_rejects_duplicates(self):
        from repro.core.trajectory import Trajectory

        leg = Trajectory(0, 0, (0, 1))
        t = MeshTrajectory(0, leg, None, 0)
        with pytest.raises(ValueError, match="twice"):
            MeshSchedule((t, t))


class TestXYScheduler:
    def test_pure_row_message(self):
        inst = make_mesh_instance(3, 6, [((1, 0), (1, 4), 0, 6)])
        sched = xy_schedule(inst)
        assert sched.delivered_ids == {0}
        traj = sched[0]
        assert traj.col_leg is None and traj.row_leg is not None

    def test_pure_column_message(self):
        inst = make_mesh_instance(6, 3, [((0, 1), (4, 1), 2, 8)])
        sched = xy_schedule(inst)
        traj = sched[0]
        assert traj.row_leg is None and traj.col_leg is not None
        assert traj.depart >= 2

    def test_leftward_and_upward_travel(self):
        inst = make_mesh_instance(5, 5, [((4, 4), (0, 0), 0, 12)])
        sched = xy_schedule(inst)
        validate_mesh_schedule(inst, sched)
        assert sched.throughput == 1

    def test_conversion_delay_enforced(self):
        inst = make_mesh_instance(4, 4, [((0, 0), (3, 3), 0, 20)])
        sched = xy_schedule(inst, conversion_delay=3)
        validate_mesh_schedule(inst, sched, conversion_delay=3)
        traj = sched[0]
        assert traj.col_leg.depart >= traj.row_leg.arrive + 3

    def test_conversion_delay_can_kill_tight_messages(self):
        # exact-fit deadline: feasible without conversion, not with it
        inst = make_mesh_instance(4, 4, [((0, 0), (3, 3), 0, 6)])
        assert xy_schedule(inst).throughput == 1
        assert xy_schedule(inst, conversion_delay=2).throughput == 0

    def test_negative_conversion_rejected(self):
        inst = make_mesh_instance(3, 3, [((0, 0), (2, 2), 0, 9)])
        with pytest.raises(ValueError):
            xy_schedule(inst, conversion_delay=-1)

    def test_row_contention_respects_capacity(self):
        # two messages racing along the same row rightward, zero slack
        inst = make_mesh_instance(
            2, 5, [((0, 0), (0, 4), 0, 4), ((0, 0), (0, 4), 0, 4)]
        )
        sched = xy_schedule(inst)
        validate_mesh_schedule(inst, sched)
        assert sched.throughput == 1

    def test_opposite_directions_share_row(self):
        # full-duplex: rightward and leftward messages never contend
        inst = make_mesh_instance(
            2, 5, [((0, 0), (0, 4), 0, 4), ((0, 4), (0, 0), 0, 4)]
        )
        assert xy_schedule(inst).throughput == 2

    def test_custom_line_scheduler(self):
        inst = random_mesh_instance(rng(1), rows=4, cols=4, k=12)
        sched = xy_schedule(inst, line_scheduler=edf_bufferless)
        validate_mesh_schedule(inst, sched)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_meshes_validate(self, seed):
        inst = random_mesh_instance(rng(100 + seed), rows=5, cols=5, k=20)
        for conv in (0, 1):
            sched = xy_schedule(inst, conversion_delay=conv)
            validate_mesh_schedule(inst, sched, conversion_delay=conv)


class TestMeshWorkloads:
    def test_random_feasible(self):
        inst = random_mesh_instance(rng(), k=25, conversion_delay=2)
        for m in inst:
            turns = 2 if (m.row_span and m.col_span) else 0
            assert m.deadline - m.release >= m.span + turns

    def test_transpose_shape(self):
        inst = transpose_mesh(rng(), n=4)
        assert len(inst) == 12
        assert all(m.source == (m.dest[1], m.dest[0]) for m in inst)

    def test_hotspot_targets(self):
        inst = mesh_hotspot(rng(), rows=4, cols=4, k=10, hotspot=(1, 2))
        assert all(m.dest == (1, 2) for m in inst)
        with pytest.raises(ValueError):
            mesh_hotspot(rng(), rows=4, cols=4, hotspot=(9, 9))


class TestValidatorCatchesCorruption:
    def test_detects_capacity_violation(self):
        from repro.core.trajectory import Trajectory

        inst = make_mesh_instance(
            2, 4, [((0, 0), (0, 3), 0, 9), ((0, 0), (0, 3), 0, 9)]
        )
        # both on the identical row leg: same links, same times
        leg = Trajectory(0, 0, (0, 1, 2))
        bad = MeshSchedule(
            (
                MeshTrajectory(0, leg, None, 0),
                MeshTrajectory(1, leg.with_id(1), None, 0),
            )
        )
        problems = mesh_schedule_problems(inst, bad)
        assert any("share H link" in p for p in problems)

    def test_detects_late_arrival(self):
        from repro.core.trajectory import Trajectory

        inst = make_mesh_instance(2, 4, [((0, 0), (0, 3), 0, 3)])
        late = MeshSchedule(
            (MeshTrajectory(0, Trajectory(0, 0, (5, 6, 7)), None, 0),)
        )
        assert any("after deadline" in p for p in mesh_schedule_problems(inst, late))

    def test_detects_early_turn(self):
        from repro.core.trajectory import Trajectory

        inst = make_mesh_instance(3, 3, [((0, 0), (2, 2), 0, 20)])
        rushed = MeshSchedule(
            (
                MeshTrajectory(
                    0,
                    Trajectory(0, 0, (0, 1)),  # arrives at turn at t=2
                    Trajectory(0, 0, (2, 3)),  # departs at t=2: ok with conv 0
                    0,
                ),
            )
        )
        assert mesh_schedule_problems(inst, rushed) == []
        assert any(
            "before conversion" in p
            for p in mesh_schedule_problems(inst, rushed, conversion_delay=1)
        )
