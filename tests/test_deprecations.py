"""The deprecated aliases still work but must warn.

Everywhere else in the suite ReproDeprecationWarning is promoted to an
error (pyproject filterwarnings), so any internal code path still using
an alias fails loudly; these tests are the one place that opts back in.
"""

import numpy as np
import pytest

from repro._deprecation import ReproDeprecationWarning
from repro.baselines import EDFPolicy, run_policy
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.solve import schedule_bidirectional
from repro.network.simulator import simulate
from repro.workloads import general_instance, session_instance


@pytest.fixture
def inst():
    return general_instance(np.random.default_rng(0), n=10, k=8)


class TestDeprecatedAliases:
    def test_run_policy_warns_and_matches(self, inst):
        with pytest.warns(ReproDeprecationWarning, match="run_policy"):
            legacy = run_policy(inst, EDFPolicy())
        assert legacy.schedule == simulate(inst, EDFPolicy()).schedule

    def test_run_policy_forwards_buffer_capacity(self, inst):
        with pytest.warns(ReproDeprecationWarning):
            legacy = run_policy(inst, EDFPolicy(), buffer_capacity=0)
        assert legacy.schedule == simulate(inst, EDFPolicy(), buffer_capacity=0).schedule

    def test_schedule_bidirectional_warns_and_matches(self):
        inst = Instance(
            10,
            (
                Message(0, 0, 5, 0, 7),
                Message(1, 8, 2, 0, 9),
                Message(2, 3, 9, 1, 10),
            ),
        )
        from repro.api import solve_bidirectional

        with pytest.warns(ReproDeprecationWarning, match="solve_bidirectional"):
            legacy = schedule_bidirectional(inst)
        current = solve_bidirectional(inst)
        assert legacy.lr == current.lr and legacy.rl == current.rl

    def test_workload_seed_kwarg_warns_and_matches(self):
        with pytest.warns(ReproDeprecationWarning, match="rng"):
            via_seed = general_instance(seed=7, n=12, k=8)
        assert via_seed == general_instance(np.random.default_rng(7), n=12, k=8)

    def test_session_instance_seed_kwarg(self):
        with pytest.warns(ReproDeprecationWarning):
            via_seed = session_instance(seed=7)
        assert via_seed == session_instance(rng=7)

    def test_seed_and_rng_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            general_instance(np.random.default_rng(1), seed=1)

    def test_warning_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)

    def test_suite_escalates_deprecations(self, inst):
        """Outside pytest.warns, a repro deprecation raises (filterwarnings)."""
        with pytest.raises(ReproDeprecationWarning):
            run_policy(inst, EDFPolicy())
