"""Deprecation machinery: live aliases warn/escalate, removed ones point home.

Everywhere else in the suite ReproDeprecationWarning is promoted to an
error (pyproject filterwarnings), and conftest exports
REPRO_DEPRECATIONS=error so pool *workers* escalate too; these tests are
the one place that exercises the machinery directly.

``schedule_bidirectional`` and the workloads ``seed=`` kwarg completed
their two-release deprecation cycle in this revision: the aliases are
gone and the names must now raise AttributeError/TypeError whose message
points at the replacement.  Deliberately no module-level import of the
removed names — that would break collection.
"""

import numpy as np
import pytest

from repro._deprecation import ReproDeprecationWarning
from repro.baselines import EDFPolicy, run_policy
from repro.engine import run_tasks
from repro.network.simulator import simulate
from repro.workloads import general_instance, session_instance


@pytest.fixture
def inst():
    return general_instance(np.random.default_rng(0), n=10, k=8)


@pytest.fixture
def warn_mode(monkeypatch):
    """Opt out of the env escalation so aliases warn instead of raise."""
    monkeypatch.delenv("REPRO_DEPRECATIONS", raising=False)


class TestLiveAliases:
    """run_policy is still inside its deprecation window."""

    def test_run_policy_warns_and_matches(self, inst, warn_mode):
        with pytest.warns(ReproDeprecationWarning, match="run_policy"):
            legacy = run_policy(inst, EDFPolicy())
        assert legacy.schedule == simulate(inst, EDFPolicy()).schedule

    def test_run_policy_forwards_buffer_capacity(self, inst, warn_mode):
        with pytest.warns(ReproDeprecationWarning):
            legacy = run_policy(inst, EDFPolicy(), buffer_capacity=0)
        assert legacy.schedule == simulate(inst, EDFPolicy(), buffer_capacity=0).schedule

    def test_warning_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)

    def test_suite_escalates_deprecations(self, inst, warn_mode):
        """Outside pytest.warns, a repro deprecation raises (filterwarnings)."""
        with pytest.raises(ReproDeprecationWarning):
            run_policy(inst, EDFPolicy())


class TestTopologySolverAliases:
    """The pre-topology-layer solver entrypoints warn and match the new homes."""

    @pytest.fixture
    def ring_inst(self):
        from repro.workloads.rings import random_ring_instance

        return random_ring_instance(np.random.default_rng(2), n=8, k=10)

    def test_core_ring_bfl_warns_and_matches(self, ring_inst, warn_mode):
        from repro.core.ring_bfl import ring_bfl as legacy
        from repro.topology.ring import ring_bfl as new

        with pytest.warns(ReproDeprecationWarning, match="ring_bfl"):
            old = legacy(ring_inst)
        assert old == new(ring_inst)

    def test_exact_ring_warns_and_matches(self, ring_inst, warn_mode):
        from repro.exact.ring import opt_ring_bufferless as legacy
        from repro.topology.ring_exact import opt_ring_bufferless as new

        with pytest.warns(ReproDeprecationWarning, match="opt_ring_bufferless"):
            old = legacy(ring_inst)
        assert old.schedule == new(ring_inst).schedule

    def test_exact_ring_buffered_warns_and_matches(self, ring_inst, warn_mode):
        from repro.exact.ring_buffered import opt_ring_buffered as legacy
        from repro.topology.ring_exact import opt_ring_buffered as new

        with pytest.warns(ReproDeprecationWarning, match="opt_ring_buffered"):
            old = legacy(ring_inst)
        assert old.schedule == new(ring_inst).schedule

    def test_exact_mesh_warns_and_matches(self, warn_mode):
        from repro.exact.mesh import opt_mesh_xy as legacy
        from repro.topology.mesh_exact import opt_mesh_xy as new
        from repro.workloads.meshes import random_mesh_instance

        inst = random_mesh_instance(
            np.random.default_rng(3), rows=4, cols=4, k=8, max_release=6, max_slack=3
        )
        with pytest.warns(ReproDeprecationWarning, match="opt_mesh_xy"):
            old = legacy(inst)
        assert old.schedule == new(inst).schedule

    def test_aliases_escalate_under_env(self, ring_inst):
        from repro.core.ring_bfl import ring_bfl as legacy

        with pytest.raises(ReproDeprecationWarning):
            legacy(ring_inst)


class TestNetworkTraceShim:
    """repro.network.trace moved to repro.trace.events (PR9 naming split)."""

    def test_old_home_warns_and_matches(self, warn_mode):
        import repro.network.trace as legacy
        from repro.trace import events

        with pytest.warns(ReproDeprecationWarning, match="repro.trace.events"):
            assert legacy.TraceEvent is events.TraceEvent
        with pytest.warns(ReproDeprecationWarning):
            assert legacy.TracingPolicy is events.TracingPolicy

    def test_old_home_escalates_under_env(self):
        import repro.network.trace as legacy

        with pytest.raises(ReproDeprecationWarning):
            legacy.TraceEvent

    def test_unrelated_attribute_still_missing_normally(self):
        import repro.network.trace as legacy

        with pytest.raises(AttributeError, match="no attribute"):
            legacy.not_a_trace_thing


class TestRemovedAliases:
    """Names past their removal cycle raise, and the error names the new API."""

    @pytest.mark.parametrize(
        "module",
        ["repro", "repro.core", "repro.core.solve"],
    )
    def test_schedule_bidirectional_gone(self, module):
        import importlib

        mod = importlib.import_module(module)
        with pytest.raises(AttributeError, match="solve_bidirectional"):
            mod.schedule_bidirectional

    def test_schedule_bidirectional_not_importable(self):
        with pytest.raises(ImportError):
            from repro.core.solve import schedule_bidirectional  # noqa: F401

    def test_unrelated_attributes_still_missing_normally(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_workload_seed_kwarg_gone(self):
        with pytest.raises(TypeError, match=r"rng=7"):
            general_instance(seed=7, n=12, k=8)

    def test_session_instance_seed_kwarg_gone(self):
        with pytest.raises(TypeError, match=r"rng=7"):
            session_instance(seed=7)

    def test_seed_error_fires_before_rng_validation(self):
        # seed= is rejected outright, even alongside a valid rng.
        with pytest.raises(TypeError, match="no longer accepts seed="):
            general_instance(np.random.default_rng(1), seed=1)

    def test_rng_still_accepts_plain_ints(self):
        assert general_instance(7, n=12, k=8) == general_instance(
            np.random.default_rng(7), n=12, k=8
        )


def _deprecated_cell(seed: int):
    """Module-level so the process pool can pickle it."""
    inst = general_instance(np.random.default_rng(seed), n=8, k=4)
    run_policy(inst, EDFPolicy())
    return seed


class TestWorkerEscalation:
    """REPRO_DEPRECATIONS=error reaches pool workers (pytest filters don't)."""

    def test_env_escalation_raises_in_process(self, inst):
        # conftest exported the variable; the raise path needs no pytest filter.
        with pytest.raises(ReproDeprecationWarning, match="run_policy"):
            run_policy(inst, EDFPolicy())

    def test_deprecation_inside_pool_worker_fails_the_sweep(self):
        with pytest.raises(ReproDeprecationWarning, match="run_policy"):
            run_tasks(_deprecated_cell, [(0,), (1,)], jobs=2)

    def test_deprecation_inside_serial_sweep_fails_too(self):
        with pytest.raises(ReproDeprecationWarning, match="run_policy"):
            run_tasks(_deprecated_cell, [(0,), (1,)], jobs=1)
