"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.message import Message

# --------------------------------------------------------------------- #
# Deterministic example instances
# --------------------------------------------------------------------- #


@pytest.fixture
def paper_example() -> Instance:
    """The six-message, 22-node example from the paper's Section 2 table."""
    rows = [
        (2, 9, 2, 13),
        (2, 12, 5, 23),
        (2, 7, 16, 24),
        (5, 14, 13, 23),
        (10, 18, 0, 15),
        (11, 13, 3, 9),
    ]
    return Instance(
        22,
        tuple(Message(i + 1, s, d, r, dl) for i, (s, d, r, dl) in enumerate(rows)),
    )


def random_lr_instance(
    rng: np.random.Generator,
    *,
    n_lo: int = 4,
    n_hi: int = 12,
    k_lo: int = 1,
    k_hi: int = 10,
    max_release: int = 8,
    max_slack: int = 6,
) -> Instance:
    """Small random left-to-right instance for cross-checks."""
    n = int(rng.integers(n_lo, n_hi + 1))
    k = int(rng.integers(k_lo, k_hi + 1))
    msgs = []
    for i in range(k):
        s = int(rng.integers(0, n - 1))
        d = int(rng.integers(s + 1, n))
        r = int(rng.integers(0, max_release + 1))
        slack = int(rng.integers(0, max_slack + 1))
        msgs.append(Message(i, s, d, r, r + (d - s) + slack))
    return Instance(n, tuple(msgs))


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def lr_messages(draw, *, n: int = 12, max_release: int = 10, max_slack: int = 8):
    """A single feasible left-to-right message on an ``n``-node line."""
    s = draw(st.integers(0, n - 2))
    d = draw(st.integers(s + 1, n - 1))
    r = draw(st.integers(0, max_release))
    slack = draw(st.integers(0, max_slack))
    ident = draw(st.integers(0, 10_000))
    return Message(ident, s, d, r, r + (d - s) + slack)


@st.composite
def lr_instances(draw, *, n: int = 12, max_messages: int = 8, max_release: int = 10, max_slack: int = 8):
    """A small left-to-right instance with unique message ids."""
    k = draw(st.integers(0, max_messages))
    msgs = []
    for i in range(k):
        m = draw(lr_messages(n=n, max_release=max_release, max_slack=max_slack))
        msgs.append(m.with_id(i))
    return Instance(n, tuple(msgs))
