"""Shared fixtures, hypothesis strategies, and the test-timeout fallback."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.message import Message

# --------------------------------------------------------------------- #
# Deprecation escalation, including inside pool workers
#
# pyproject's filterwarnings promotes ReproDeprecationWarning to an error
# in *this* process; worker processes spawned by the sweep engine never
# see pytest's filter configuration.  REPRO_DEPRECATIONS=error is the
# cross-process layer: warn_deprecated() raises wherever the variable is
# inherited, so a deprecated call inside a pool task fails the suite too.
# Set at import time (not in a fixture) so workers forked/spawned at any
# point inherit it.
# --------------------------------------------------------------------- #

os.environ.setdefault("REPRO_DEPRECATIONS", "error")

# --------------------------------------------------------------------- #
# Per-test wall-clock ceiling
#
# pyproject.toml sets a suite-wide ``timeout`` so a hung test fails fast.
# When pytest-timeout is installed it owns that ini key and this block is
# inert; otherwise a minimal SIGALRM-based fallback enforces the same
# ceiling (main thread + POSIX only — elsewhere tests simply run
# unguarded, exactly like a missing plugin would behave).
# --------------------------------------------------------------------- #

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser: pytest.Parser) -> None:
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini(
            "timeout",
            "per-test wall-clock ceiling in seconds (0 disables); "
            "vendored fallback for pytest-timeout",
            default="0",
        )


def _test_ceiling(item: pytest.Item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    timeout = 0.0 if _HAVE_PYTEST_TIMEOUT else _test_ceiling(item)
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test exceeded the {timeout:g}s wall-clock ceiling", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

# --------------------------------------------------------------------- #
# Deterministic example instances
# --------------------------------------------------------------------- #


@pytest.fixture
def paper_example() -> Instance:
    """The six-message, 22-node example from the paper's Section 2 table."""
    rows = [
        (2, 9, 2, 13),
        (2, 12, 5, 23),
        (2, 7, 16, 24),
        (5, 14, 13, 23),
        (10, 18, 0, 15),
        (11, 13, 3, 9),
    ]
    return Instance(
        22,
        tuple(Message(i + 1, s, d, r, dl) for i, (s, d, r, dl) in enumerate(rows)),
    )


def random_lr_instance(
    rng: np.random.Generator,
    *,
    n_lo: int = 4,
    n_hi: int = 12,
    k_lo: int = 1,
    k_hi: int = 10,
    max_release: int = 8,
    max_slack: int = 6,
) -> Instance:
    """Small random left-to-right instance for cross-checks."""
    n = int(rng.integers(n_lo, n_hi + 1))
    k = int(rng.integers(k_lo, k_hi + 1))
    msgs = []
    for i in range(k):
        s = int(rng.integers(0, n - 1))
        d = int(rng.integers(s + 1, n))
        r = int(rng.integers(0, max_release + 1))
        slack = int(rng.integers(0, max_slack + 1))
        msgs.append(Message(i, s, d, r, r + (d - s) + slack))
    return Instance(n, tuple(msgs))


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def lr_messages(draw, *, n: int = 12, max_release: int = 10, max_slack: int = 8):
    """A single feasible left-to-right message on an ``n``-node line."""
    s = draw(st.integers(0, n - 2))
    d = draw(st.integers(s + 1, n - 1))
    r = draw(st.integers(0, max_release))
    slack = draw(st.integers(0, max_slack))
    ident = draw(st.integers(0, 10_000))
    return Message(ident, s, d, r, r + (d - s) + slack)


@st.composite
def lr_instances(draw, *, n: int = 12, max_messages: int = 8, max_release: int = 10, max_slack: int = 8):
    """A small left-to-right instance with unique message ids."""
    k = draw(st.integers(0, max_messages))
    msgs = []
    for i in range(k):
        m = draw(lr_messages(n=n, max_release=max_release, max_slack=max_slack))
        msgs.append(m.with_id(i))
    return Instance(n, tuple(msgs))
