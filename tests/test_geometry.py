"""Unit tests for the parallelogram / scan-line geometry."""

import pytest

from repro.core.geometry import (
    Parallelogram,
    Segment,
    alpha_range,
    relevance_matrix,
    relevant_alphas,
    segment_on_line,
    segments_on_line,
)
from repro.core.message import Message


def msg(s=2, d=9, r=2, dl=13, i=1):
    return Message(i, s, d, r, dl)


class TestParallelogram:
    def test_of_rejects_rl(self):
        with pytest.raises(ValueError, match="left-to-right"):
            Parallelogram.of(Message(0, 5, 2, 0, 9))

    def test_corners_paper_message_1(self):
        # message 1 of the paper: 2 -> 9, release 2, deadline 13, span 7
        p = Parallelogram.of(msg())
        bl, tl, br, tr = p.corners()
        assert bl == (2, 2)  # left side bottom: (source, release)
        assert tl == (2, 6)  # left side top: (source, deadline - span)
        assert br == (9, 9)  # right side bottom: (dest, release + span)
        assert tr == (9, 13)  # right side top: (dest, deadline)

    def test_contains_point_inside(self):
        p = Parallelogram.of(msg())
        assert p.contains_point(2, 2)
        assert p.contains_point(9, 13)
        assert p.contains_point(5, 7)

    def test_contains_point_outside(self):
        p = Parallelogram.of(msg())
        assert not p.contains_point(2, 1)  # before release
        assert not p.contains_point(2, 7)  # departing too late
        assert not p.contains_point(1, 2)  # left of source
        assert not p.contains_point(10, 10)  # right of dest

    def test_scan_lines_count(self):
        p = Parallelogram.of(msg())
        assert len(list(p.scan_lines())) == p.slack + 1

    def test_slack_span_match_message(self):
        m = msg()
        p = Parallelogram.of(m)
        assert p.slack == m.slack and p.span == m.span


class TestSegment:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            Segment(3, 3, 0, 0)

    def test_depart_arrive(self):
        s = Segment(left=2, right=9, message_id=1, alpha=0)
        assert s.depart == 2 and s.arrive == 9
        s2 = Segment(left=2, right=9, message_id=1, alpha=-4)
        assert s2.depart == 6 and s2.arrive == 13

    def test_overlap_shares_edge(self):
        a = Segment(0, 4, 0, 0)
        b = Segment(3, 6, 1, 0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_touching_endpoints_not_overlap(self):
        a = Segment(0, 4, 0, 0)
        b = Segment(4, 6, 1, 0)
        assert not a.overlaps(b) and not b.overlaps(a)

    def test_containment(self):
        outer = Segment(0, 9, 0, 0)
        inner = Segment(2, 5, 1, 0)
        assert outer.contains(inner) and outer.properly_contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer) and not outer.properly_contains(outer)

    def test_sort_key_prefers_contained(self):
        outer = Segment(0, 5, 0, 0)
        inner = Segment(2, 5, 1, 0)
        assert inner.sort_key < outer.sort_key


class TestLineQueries:
    def test_segment_on_line_inside(self):
        m = msg()
        seg = segment_on_line(m, 0)
        assert seg is not None
        assert (seg.left, seg.right) == (2, 9)

    def test_segment_on_line_outside(self):
        assert segment_on_line(msg(), 5) is None

    def test_segments_on_line_sorted(self):
        msgs = [
            Message(0, 0, 9, 0, 9),
            Message(1, 2, 5, 0, 8),
            Message(2, 0, 5, 0, 6),
        ]
        segs = segments_on_line(msgs, 0)
        # nearest right endpoint first; contained (larger left) before container
        assert [s.message_id for s in segs] == [1, 2, 0]

    def test_relevant_alphas_decreasing_and_complete(self):
        msgs = [msg(s=2, d=9, r=2, dl=13), msg(s=0, d=3, r=0, dl=3, i=2)]
        alphas = list(relevant_alphas(msgs))
        assert alphas == sorted(alphas, reverse=True)
        assert set(alphas) == set(range(-4, 1))  # [-4, 0] window union {0}

    def test_alpha_range(self):
        msgs = [msg(), msg(s=0, d=3, r=0, dl=3, i=2)]
        assert alpha_range(msgs) == (-4, 0)

    def test_alpha_range_empty_raises(self):
        with pytest.raises(ValueError):
            alpha_range([])


class TestRelevanceMatrix:
    def test_matches_scalar_predicate(self, paper_example):
        alphas, ids, rel = relevance_matrix(paper_example)
        for i, mid in enumerate(ids):
            m = paper_example[int(mid)]
            for j, alpha in enumerate(alphas):
                assert rel[i, j] == m.relevant_to(int(alpha))

    def test_row_sums_are_slack_plus_one(self, paper_example):
        _, ids, rel = relevance_matrix(paper_example)
        for i, mid in enumerate(ids):
            assert rel[i].sum() == paper_example[int(mid)].slack + 1

    def test_empty_instance(self):
        from repro.core.instance import Instance

        alphas, ids, rel = relevance_matrix(Instance(4, ()))
        assert alphas.size == 0 and ids.size == 0 and rel.size == 0
