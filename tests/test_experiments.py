"""Tests for the experiment harness (fast, reduced-trial runs)."""

import pytest

from repro.analysis.tables import Table
from repro.experiments import (
    ALL,
    a1_tiebreak,
    a2_buffers,
    e1_figure1,
    e2_bfl_ratio,
    e3_uniform_slack,
    e4_uniform_span,
    e5_static,
    e6_lower_bound,
    e7_dbfl,
    e9_baselines,
    e10_scaling,
    e11_ring,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
            "e11", "e12", "e13", "e14", "e15", "e16", "e17", "a1", "a2",
        }

    def test_every_module_has_description_and_run(self):
        for mod in ALL.values():
            assert isinstance(mod.DESCRIPTION, str) and mod.DESCRIPTION
            assert callable(mod.run)


class TestE1:
    def test_summary_all_six(self):
        table = e1_figure1.run()
        assert len(table.rows) == 6
        summary = {r["metric"]: r["value"] for r in table.summary.rows}
        assert set(summary.values()) == {6}

    def test_render_is_figure(self):
        assert "Figure 1" in e1_figure1.render()


class TestRatioExperiments:
    def test_e2_bound_holds(self):
        table = e2_bfl_ratio.run(seed=1, trials=5)
        assert all(r["bound_ok"] for r in table.rows)

    def test_e3_bound_holds(self):
        table = e3_uniform_slack.run(seed=1, trials=3)
        assert all(r["max_ratio"] <= 3.0 + 1e-9 for r in table.rows)
        assert all(r["max_credit"] <= 2.0 + 1e-9 for r in table.rows)

    def test_e4_bound_and_conversion(self):
        table = e4_uniform_span.run(seed=1, trials=3)
        for r in table.rows:
            assert r["max_ratio"] <= 2.0 + 1e-9
            assert r["min_converted_frac"] >= 0.5 - 1e-9

    def test_e5_bound_holds(self):
        table = e5_static.run(seed=1, trials=3)
        assert all(r["max_ratio"] <= 2.0 + 1e-9 for r in table.rows)


class TestE6:
    def test_ratio_growth_and_bounds(self):
        table = e6_lower_bound.run(max_k=5)
        ratios = [r["ratio"] for r in table.rows]
        assert ratios == sorted(ratios)
        assert all(r["bounds_ok"] for r in table.rows)

    def test_exact_rows_marked(self):
        table = e6_lower_bound.run(max_k=4)
        sources = {r["k"]: r["optbl_source"] for r in table.rows}
        assert sources[1] == "exact" and sources[4] == "paper cap"


class TestE7:
    def test_perfect_equality(self):
        table = e7_dbfl.run(seed=1, trials=4)
        for r in table.rows:
            assert r["set_equal"] == "4/4"
            assert r["lines_equal"] == "4/4"


class TestE9E10E11:
    def test_e9_respects_upper_bound(self):
        table = e9_baselines.run(seed=1, trials=2)
        for r in table.rows:
            for s in e9_baselines.SCHEDULERS:
                assert r[s] <= r["upper_bound"] + 1e-9

    def test_e10_reports_positive_times(self):
        table = e10_scaling.run(seed=1, repeats=1)
        assert all(r["bfl_ms"] > 0 for r in table.rows)

    def test_e11_bound_holds(self):
        table = e11_ring.run(seed=1, trials=4)
        assert all(r["bound_ok"] for r in table.rows)


class TestE14:
    def test_mesh_fractions_and_monotonicity(self):
        from repro.experiments import e14_mesh

        table = e14_mesh.run(seed=1, trials=2)
        by_key = {(r["family"], r["conversion"]): r for r in table.rows}
        for family in ("random", "transpose", "hotspot"):
            assert by_key[(family, 2)]["bfl"] <= by_key[(family, 0)]["bfl"] + 1e-9
            assert 0.0 <= by_key[(family, 0)]["bfl"] <= 1.0

    def test_e16_ratios_well_formed(self):
        from repro.experiments import e16_online

        table = e16_online.run(seed=3, trials=2)
        assert table.rows, "e16 produced no cells"
        for row in table.rows:
            # The bufferless online policy can never beat bufferless OPT...
            assert 0.0 <= row["bfl"] <= 1.0 + 1e-9
            # ...while the buffered policies may exceed 1 but stay finite.
            assert row["dbfl"] >= 0.0 and row["greedy"] >= 0.0


    def test_e17_ratios_bounded_by_one(self):
        from repro.experiments import e17_buffers

        table = e17_buffers.run(seed=2, trials=2)
        assert table.rows, "e17 produced no cells"
        for row in table.rows:
            # the reservation pass never schedules past the exact optimum
            assert 0.0 <= row["min_ratio"] <= row["mean_ratio"] <= 1.0
            assert row["ca"] <= row["opt_b"] + 1e-9


class TestAblations:
    def test_a1_nearest_dest_guarantee(self):
        table = a1_tiebreak.run(seed=1, trials=5)
        nearest = [r for r in table.rows if r["rule"] == "nearest_dest"]
        assert nearest and all(r["guarantee_held"] for r in nearest)

    def test_a2_monotone_in_capacity(self):
        table = a2_buffers.run(seed=1, trials=3)
        by_family: dict[str, list] = {}
        for r in table.rows:
            by_family.setdefault(r["family"], []).append(r["dbfl"])
        for vals in by_family.values():
            assert vals == sorted(vals)

    def test_tables_render(self):
        table = a1_tiebreak.run(seed=1, trials=2)
        out = table.render()
        assert isinstance(table, Table) and "rule" in out


class TestUniformSignature:
    """All experiments share run(cfg, *, engine=None, obs=None)."""

    def test_runconfig_equals_keyword_style(self):
        from repro.experiments.base import RunConfig

        a = e3_uniform_slack.run(RunConfig(seed=1, trials=2))
        b = e3_uniform_slack.run(seed=1, trials=2)
        assert a.rows == b.rows

    def test_seedless_experiments_ignore_seed(self):
        from repro.experiments.base import RunConfig

        table = e6_lower_bound.run(RunConfig(seed=123), max_k=4)
        assert len(table.rows) == 4  # k = 1..4

    def test_params_typo_raises(self):
        from repro.experiments.base import RunConfig

        with pytest.raises(TypeError, match="trils"):
            e3_uniform_slack.run(RunConfig(params={"trils": 2}))
        with pytest.raises(TypeError, match="trils"):
            e3_uniform_slack.run(trils=2)

    def test_params_typo_is_a_typed_config_error(self):
        from repro.errors import ConfigError, ReproError
        from repro.experiments.base import RunConfig

        with pytest.raises(ConfigError) as err:
            e3_uniform_slack.run(RunConfig(params={"trils": 2, "sed": 1}))
        # The message names every bad key and the accepted set.
        assert "trils" in str(err.value) and "sed" in str(err.value)
        assert "trials" in str(err.value) and "seed" in str(err.value)
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, TypeError)

    def test_engine_maps_to_jobs(self):
        from repro.engine import Engine
        from repro.experiments import e12_load_sweep
        from repro.experiments.base import RunConfig

        cfg = RunConfig(seed=7, trials=2)
        serial = e12_load_sweep.run(cfg, engine=Engine(jobs=1))
        parallel = e12_load_sweep.run(cfg, engine=Engine(jobs=2))
        assert serial.rows == parallel.rows

    def test_engine_ignored_by_serial_experiments(self):
        from repro.engine import Engine
        from repro.experiments.base import RunConfig

        table = e3_uniform_slack.run(RunConfig(seed=1, trials=2), engine=Engine(jobs=4))
        assert table.rows

    def test_obs_tracer_captures_run(self):
        from repro.experiments.base import RunConfig
        from repro.obs.tracer import Tracer

        tr = Tracer(enabled=True)
        # unique seed: a cached instance would satisfy the sweep without
        # ever launching the kernel, leaving only cache.hits counters
        e2_bfl_ratio.run(RunConfig(seed=31337, trials=2), obs=tr)
        assert tr.counters.get("bfl.launches", 0) > 0
        assert tr.counters["engine.tasks"] > 0

    def test_all_accept_runconfig(self):
        from repro.experiments.base import RunConfig

        for name, mod in ALL.items():
            accepts = mod.run.accepts
            assert isinstance(accepts, frozenset), name
