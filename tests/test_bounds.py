"""Tests for the cheap upper bounds."""

import numpy as np
import pytest

from repro.core.instance import Instance, make_instance
from repro.exact import (
    bufferless_lp_bound,
    cut_upper_bound,
    feasible_count_bound,
    opt_buffered,
    opt_bufferless,
)
from repro.exact.bounds import _edf_pack

from .conftest import random_lr_instance


class TestEdfPack:
    def test_empty(self):
        assert _edf_pack([]) == 0

    def test_all_fit(self):
        assert _edf_pack([(0, 5), (1, 5), (2, 5)]) == 3

    def test_contention(self):
        # three unit jobs, all must run at exactly time 0
        assert _edf_pack([(0, 0), (0, 0), (0, 0)]) == 1

    def test_staggered(self):
        assert _edf_pack([(0, 1), (0, 1), (0, 1)]) == 2

    def test_invalid_window_skipped(self):
        assert _edf_pack([(5, 3)]) == 0

    def test_gap_between_jobs(self):
        assert _edf_pack([(0, 0), (10, 10)]) == 2


class TestBounds:
    def test_feasible_count(self):
        inst = make_instance(8, [(0, 3, 0, 5), (0, 6, 0, 3)])
        assert feasible_count_bound(inst) == 1

    def test_cut_bound_bottleneck(self):
        # four zero-slack messages all crossing link (2,3) at time 2
        rows = [(0, 5, 0, 5)] * 4
        inst = make_instance(6, rows)
        assert cut_upper_bound(inst) == 1

    def test_cut_bound_empty(self):
        assert cut_upper_bound(Instance(4, ())) == 0

    @pytest.mark.parametrize("seed", range(25))
    def test_bounds_dominate_optima(self, seed):
        rng = np.random.default_rng(4000 + seed)
        inst = random_lr_instance(rng, k_hi=6, max_slack=4)
        opt_bl = opt_bufferless(inst).throughput
        opt_b = opt_buffered(inst).throughput
        assert opt_b <= feasible_count_bound(inst)
        assert opt_b <= cut_upper_bound(inst)
        lp = bufferless_lp_bound(inst)
        assert opt_bl <= lp + 1e-9

    def test_lp_bound_empty(self):
        assert bufferless_lp_bound(Instance(4, ())) == 0.0

    def test_lp_tight_on_disjoint(self):
        inst = make_instance(10, [(0, 3, 0, 3), (4, 7, 0, 7)])
        assert bufferless_lp_bound(inst) == pytest.approx(2.0)
