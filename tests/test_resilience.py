"""The crash-resilient sweep engine: retries, respawns, checkpoints."""

from __future__ import annotations

import os
import pathlib
import pickle

import numpy as np
import pytest

from repro.engine import (
    Engine,
    ResilienceConfig,
    resolve_jobs,
    run_tasks,
    run_tasks_resilient,
    spawn_seeds,
)
from repro.errors import TaskTimeoutError

# --------------------------------------------------------------------- #
# Worker task functions — module level so pool workers can unpickle them.
# --------------------------------------------------------------------- #


def _seed_mean(seed_seq):
    rng = np.random.default_rng(seed_seq)
    return float(rng.random(16).mean())


def _crash_once(seed_seq, index, crash_index, marker_dir):
    """Simulated segfault: hard-exit the worker the first time only."""
    if index == crash_index:
        marker = pathlib.Path(marker_dir) / f"crashed_{index}"
        if not marker.exists():
            marker.write_text("")
            os._exit(1)
    return _seed_mean(seed_seq)


def _flaky_once(x, marker_dir):
    marker = pathlib.Path(marker_dir) / f"flaky_{x}"
    if not marker.exists():
        marker.write_text("")
        raise OSError("transient failure")
    return x + 100


def _always_fails(x):
    raise ValueError(f"task {x} is hopeless")


def _hang_one(x):
    if x == 2:
        import time

        time.sleep(60)
    return x


# --------------------------------------------------------------------- #
# ResilienceConfig / resolve_jobs
# --------------------------------------------------------------------- #


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ResilienceConfig(task_timeout=0)
        with pytest.raises(ValueError, match="max_attempts"):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError, match="max_respawns"):
            ResilienceConfig(max_respawns=-1)

    def test_resolve_jobs_rejects_non_numeric_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match=r"REPRO_JOBS.*'many'"):
            resolve_jobs(None)

    def test_resolve_jobs_accepts_numeric_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3


# --------------------------------------------------------------------- #
# run_tasks_resilient
# --------------------------------------------------------------------- #


class TestResilientRunner:
    def test_serial_matches_run_tasks(self):
        tasks = [(s,) for s in spawn_seeds(7, 6)]
        expected, _ = run_tasks(_seed_mean, tasks, jobs=1)
        got, _ = run_tasks_resilient(_seed_mean, tasks, jobs=1)
        assert got == expected

    def test_worker_crash_recovered_byte_identical(self, tmp_path):
        """An os._exit mid-task breaks the pool; recovery re-runs only the
        missing cells and the result matches a fault-free jobs=1 run."""
        seeds = spawn_seeds(11, 8)
        tasks = [(s, i, 3, str(tmp_path)) for i, s in enumerate(seeds)]
        expected, _ = run_tasks_resilient(_seed_mean, [(s,) for s in seeds], jobs=1)
        got, _ = run_tasks_resilient(
            _crash_once, tasks, jobs=2, config=ResilienceConfig(max_respawns=2)
        )
        assert (tmp_path / "crashed_3").exists()
        assert pickle.dumps(got) == pickle.dumps(expected)

    def test_pool_crash_with_no_respawn_budget_reraises(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        tasks = [(s, i, 0, str(tmp_path)) for i, s in enumerate(spawn_seeds(1, 4))]
        with pytest.raises(BrokenProcessPool):
            run_tasks_resilient(
                _crash_once, tasks, jobs=2, config=ResilienceConfig(max_respawns=0)
            )

    def test_retry_with_backoff(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(4)]
        got, _ = run_tasks_resilient(
            _flaky_once,
            tasks,
            jobs=2,
            config=ResilienceConfig(max_attempts=3, backoff=0.01),
        )
        assert got == [100, 101, 102, 103]

    def test_retry_serial(self, tmp_path):
        got, _ = run_tasks_resilient(
            _flaky_once,
            [(9, str(tmp_path))],
            jobs=1,
            config=ResilienceConfig(max_attempts=2, backoff=0.01),
        )
        assert got == [109]

    def test_retry_exhaustion_reraises(self):
        with pytest.raises(ValueError, match="hopeless"):
            run_tasks_resilient(
                _always_fails,
                [(0,)],
                jobs=1,
                config=ResilienceConfig(max_attempts=2, backoff=0.01),
            )

    def test_hung_task_raises_timeout_error(self):
        with pytest.raises(TaskTimeoutError, match="exceeded"):
            run_tasks_resilient(
                _hang_one,
                [(i,) for i in range(4)],
                jobs=2,
                config=ResilienceConfig(task_timeout=0.5, max_attempts=2),
            )

    def test_checkpoint_resume(self, tmp_path):
        ck = tmp_path / "journal.jsonl"
        tasks = [(s,) for s in spawn_seeds(5, 5)]
        expected, _ = run_tasks_resilient(
            _seed_mean, tasks, jobs=1, config=ResilienceConfig(checkpoint=ck)
        )
        # Simulate a crash after two completed cells: keep header + 2 records.
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:3]) + "\n")
        got, _ = run_tasks_resilient(
            _seed_mean, tasks, jobs=1, config=ResilienceConfig(checkpoint=ck)
        )
        assert got == expected

    def test_checkpoint_signature_mismatch_recomputes(self, tmp_path):
        ck = tmp_path / "journal.jsonl"
        tasks = [(s,) for s in spawn_seeds(5, 3)]
        run_tasks_resilient(
            _seed_mean, tasks, jobs=1, config=ResilienceConfig(checkpoint=ck)
        )
        # A different sweep shape must not trust the stale journal.
        more = [(s,) for s in spawn_seeds(5, 4)]
        expected, _ = run_tasks_resilient(_seed_mean, more, jobs=1)
        got, _ = run_tasks_resilient(
            _seed_mean, more, jobs=1, config=ResilienceConfig(checkpoint=ck)
        )
        assert got == expected


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #


class TestEngineIntegration:
    def test_engine_routes_through_resilient_runner(self):
        tasks = [(s,) for s in spawn_seeds(3, 6)]
        expected, _ = run_tasks(_seed_mean, tasks, jobs=1)
        engine = Engine(jobs=2, resilience=ResilienceConfig(max_attempts=2))
        got, _ = engine.map(_seed_mean, tasks)
        assert got == expected

    def test_sweep_table_identical_under_resilient_engine(self):
        from repro.experiments import e15_faults
        from repro.experiments.base import RunConfig

        serial = e15_faults.run(RunConfig(seed=11, trials=2))
        resilient = e15_faults.run(
            RunConfig(seed=11, trials=2),
            engine=Engine(jobs=2, resilience=ResilienceConfig()),
        )
        assert serial.render() == resilient.render()
