"""Tests for the ring workload generators."""

import numpy as np
import pytest

from repro.topology.ring import ring_bfl
from repro.topology.ring import validate_ring_schedule
from repro.workloads.rings import all_to_all_ring, random_ring_instance, ring_hotspot


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRandomRing:
    def test_shape(self):
        inst = random_ring_instance(rng(), n=10, k=12)
        assert inst.n == 10 and len(inst) == 12
        assert all(m.feasible for m in inst)

    def test_deterministic(self):
        a = random_ring_instance(rng(3), n=8, k=6)
        b = random_ring_instance(rng(3), n=8, k=6)
        assert a.messages == b.messages

    def test_schedulable(self):
        inst = random_ring_instance(rng(1), n=8, k=10)
        sched = ring_bfl(inst)
        validate_ring_schedule(inst, sched)


class TestAllToAll:
    def test_complete_pairs(self):
        inst = all_to_all_ring(rng(), n=6)
        assert len(inst) == 6 * 5
        pairs = {(m.source, m.dest) for m in inst}
        assert len(pairs) == 30

    def test_uniform_slack(self):
        inst = all_to_all_ring(rng(), n=5, per_pair_slack=3)
        assert all(m.slack == 3 for m in inst)


class TestHotspot:
    def test_all_target_hotspot(self):
        inst = ring_hotspot(rng(), n=10, k=15, hotspot=4)
        assert all(m.dest == 4 for m in inst)
        assert all(m.source != 4 for m in inst)

    def test_wraparound_traffic_present(self):
        inst = ring_hotspot(rng(2), n=8, k=30, hotspot=1)
        assert any(m.source > m.dest for m in inst)  # wraps past node 0

    def test_invalid_hotspot(self):
        with pytest.raises(ValueError):
            ring_hotspot(rng(), n=8, hotspot=8)

    def test_contention_forces_drops(self):
        # many zero-ish-slack messages into one node: ring_bfl must drop some
        inst = ring_hotspot(rng(4), n=8, k=30, max_release=2, max_slack=1)
        sched = ring_bfl(inst)
        validate_ring_schedule(inst, sched)
        assert sched.throughput < len(inst)
