"""Integration tests: cross-module pipelines a real user would run."""

import numpy as np
import pytest

from repro.analysis import (
    bfl_buffered_guarantee,
    instance_summary,
    schedule_summary,
    throughput_ratio,
)
from repro.baselines import EDFPolicy
from repro.core.bfl import bfl
from repro.core.bfl_fast import bfl_fast
from repro.core.dbfl import dbfl
from repro.api import solve_bidirectional
from repro.network.simulator import simulate
from repro.core.validate import validate_schedule
from repro.exact import opt_buffered, opt_bufferless
from repro.hardness import dpll_sat, random_3sat, reduce_3sat
from repro.hardness.dimacs import parse_dimacs, to_dimacs
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_schedule,
    save_instance,
    save_schedule,
    load_instance,
)
from repro.trace.events import TracingPolicy
from repro.viz.gantt import link_gantt
from repro.viz.lattice import render_schedule
from repro.workloads import general_instance, multimedia_instance


class TestEndToEndPipeline:
    def test_generate_schedule_analyse_render(self):
        """workload -> BFL -> validate -> metrics -> two renderings."""
        rng = np.random.default_rng(0)
        inst = general_instance(rng, n=20, k=25, max_release=12, max_slack=6)
        schedule = bfl(inst)
        validate_schedule(inst, schedule, require_bufferless=True)

        isum = instance_summary(inst)
        ssum = schedule_summary(inst, schedule)
        assert ssum["delivered"] == schedule.throughput
        assert ssum["delivered"] + ssum["dropped"] == isum["messages"]

        lattice = render_schedule(inst, schedule)
        gantt = link_gantt(inst, schedule)
        assert lattice and gantt

    def test_persist_and_reload_preserves_everything(self, tmp_path):
        """instance/schedule round-trip through disk, revalidate, recompute."""
        rng = np.random.default_rng(1)
        inst = general_instance(rng, n=16, k=20)
        schedule = bfl(inst)
        save_instance(inst, tmp_path / "i.json")
        save_schedule(schedule, tmp_path / "s.json")
        inst2 = load_instance(tmp_path / "i.json")
        sched2 = load_schedule(tmp_path / "s.json")
        validate_schedule(inst2, sched2, require_bufferless=True)
        assert bfl(inst2).delivered_ids == schedule.delivered_ids

    def test_three_implementations_agree(self):
        """bfl == bfl_fast == dbfl on the same instance (Theorem 5.2 +
        the vectorisation equivalence), end to end."""
        rng = np.random.default_rng(2)
        for _ in range(5):
            inst = general_instance(rng, n=18, k=30, max_release=15, max_slack=7)
            ref = bfl(inst)
            assert bfl_fast(inst).delivered_ids == ref.delivered_ids
            assert dbfl(inst).delivered_ids == ref.delivered_ids

    def test_guarantee_certificate_respected_by_exact(self):
        """structure detection -> certified factor -> exact check."""
        rng = np.random.default_rng(3)
        inst = general_instance(rng, n=8, k=7, max_release=4, max_slack=3)
        g = bfl_buffered_guarantee(inst)
        got = bfl(inst).throughput
        opt_b = opt_buffered(inst).throughput
        assert opt_b <= g.factor * max(got, 1) + 1e-9
        assert throughput_ratio(opt_b, got) <= g.factor + 1e-9

    def test_bidirectional_with_traced_simulation(self):
        """full instance (both directions) + a traced buffered baseline."""
        rng = np.random.default_rng(4)
        from repro.core.instance import Instance
        from repro.core.message import Message

        msgs = []
        for i in range(14):
            a, b = rng.choice(16, size=2, replace=False)
            r = int(rng.integers(0, 8))
            msgs.append(Message(i, int(a), int(b), r, r + abs(int(b) - int(a)) + 4))
        inst = Instance(16, tuple(msgs))

        both = solve_bidirectional(inst)
        assert both.throughput <= len(inst)

        lr, _ = inst.split_directions()
        tracer = TracingPolicy(EDFPolicy())
        result = simulate(lr, tracer)
        delivers = {e.message_id for e in tracer.of_kind("deliver")}
        assert delivers == set(result.delivered_ids)

    def test_sat_pipeline_through_dimacs(self):
        """DIMACS text -> CNF -> reduction -> exact scheduling -> SAT verdict."""
        rng = np.random.default_rng(5)
        formula = random_3sat(3, 3, rng)
        text = to_dimacs(formula, comment="integration")
        parsed = parse_dimacs(text)
        red = reduce_3sat(parsed)
        opt = opt_bufferless(red.instance)
        assert (opt.throughput == red.target) == dpll_sat(parsed)

    def test_multimedia_qos_report(self):
        """mixed traffic -> per-class accounting via the class map."""
        rng = np.random.default_rng(6)
        inst, class_of = multimedia_instance(rng, n=24, k=80, horizon=40)
        delivered = dbfl(inst).delivered_ids
        by_class: dict[str, list[bool]] = {}
        for m in inst:
            by_class.setdefault(class_of[m.id], []).append(m.id in delivered)
        # bulk traffic (huge slack) should do at least as well as audio
        bulk = np.mean(by_class["bulk"])
        audio = np.mean(by_class["audio"])
        assert bulk >= audio

    def test_instance_dict_is_json_stable(self):
        """as_dict output survives a JSON round-trip byte-for-byte."""
        import json

        rng = np.random.default_rng(7)
        inst = general_instance(rng, n=10, k=8)
        d = instance_to_dict(inst)
        assert instance_from_dict(json.loads(json.dumps(d))) == inst
