"""Tests for the bidirectional scheduling façade."""

import numpy as np
import pytest

from repro.baselines import edf_bufferless
from repro.core.instance import Instance
from repro.core.message import Message
from repro.api import solve_bidirectional
from repro.core.solve import BidirectionalSchedule
from repro.exact import opt_bufferless


def mixed_instance(rng, n=12, k=10):
    msgs = []
    for i in range(k):
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        while b == a:
            b = int(rng.integers(0, n))
        r = int(rng.integers(0, 6))
        sl = int(rng.integers(0, 5))
        msgs.append(Message(i, a, b, r, r + abs(b - a) + sl))
    return Instance(n, tuple(msgs))


class TestBidirectional:
    def test_covers_both_directions(self):
        rng = np.random.default_rng(0)
        inst = mixed_instance(rng)
        result = solve_bidirectional(inst)
        lr_ids = {m.id for m in inst if m.source < m.dest}
        rl_ids = set(inst.ids) - lr_ids
        assert result.lr.delivered_ids <= lr_ids
        assert result.rl.delivered_ids <= rl_ids
        assert result.throughput == len(result.delivered_ids)

    def test_directions_do_not_interact(self):
        """Adding RL traffic never changes the LR half's outcome."""
        rng = np.random.default_rng(1)
        lr_only = Instance(
            10, (Message(0, 0, 5, 0, 7), Message(1, 2, 8, 0, 9))
        )
        with_rl = Instance(
            10,
            lr_only.messages
            + (Message(2, 9, 1, 0, 10), Message(3, 7, 0, 1, 12)),
        )
        a = solve_bidirectional(lr_only)
        b = solve_bidirectional(with_rl)
        assert a.lr.delivered_ids == b.lr.delivered_ids

    def test_custom_scheduler(self):
        rng = np.random.default_rng(2)
        inst = mixed_instance(rng)
        result = solve_bidirectional(inst, scheduler=edf_bufferless)
        assert isinstance(result, BidirectionalSchedule)
        assert result.throughput >= 0

    def test_superposition_optimality(self):
        """Exact per-direction optima superpose to the global optimum:
        the combined count equals the sum of the halves' optima."""
        rng = np.random.default_rng(3)
        inst = mixed_instance(rng, n=8, k=8)
        result = solve_bidirectional(
            inst, scheduler=lambda half: opt_bufferless(half).schedule
        )
        lr_half, rl_half = inst.split_directions()
        expected = (
            opt_bufferless(lr_half).throughput
            + opt_bufferless(rl_half.mirrored()).throughput
        )
        assert result.throughput == expected

    def test_rl_trajectory_nodes_move_leftward(self):
        inst = Instance(8, (Message(0, 6, 2, 0, 10),))
        result = solve_bidirectional(inst)
        hops = result.rl_trajectory_nodes(0)
        nodes = [v for v, _ in hops]
        assert nodes[0] == 6
        assert nodes == sorted(nodes, reverse=True)

    def test_rl_lookup_missing_raises(self):
        inst = Instance(8, (Message(0, 1, 5, 0, 9),))
        result = solve_bidirectional(inst)
        with pytest.raises(KeyError):
            result.rl_trajectory_nodes(0)  # message 0 is LR, not RL
