"""Tests for exact OPT_BL solvers (MILP and branch-and-bound)."""

import numpy as np
import pytest

from repro.core.instance import Instance, make_instance
from repro.core.message import Message
from repro.core.validate import validate_schedule
from repro.exact import opt_bufferless, opt_bufferless_bnb

from .conftest import random_lr_instance


class TestSmallCases:
    def test_empty(self):
        assert opt_bufferless(Instance(4, ())).throughput == 0
        assert opt_bufferless_bnb(Instance(4, ())).throughput == 0

    def test_single_message(self):
        inst = make_instance(6, [(1, 4, 0, 9)])
        assert opt_bufferless(inst).throughput == 1

    def test_two_compatible(self):
        inst = make_instance(8, [(0, 3, 0, 3), (3, 7, 3, 7)])
        assert opt_bufferless(inst).throughput == 2

    def test_forced_conflict(self):
        # both slack 0, same line, overlapping: exactly one deliverable
        inst = make_instance(8, [(0, 4, 0, 4), (2, 6, 2, 6)])
        assert opt_bufferless(inst).throughput == 1
        assert opt_bufferless_bnb(inst).throughput == 1

    def test_slack_allows_both(self):
        inst = make_instance(8, [(0, 4, 0, 4), (2, 6, 2, 7)])
        assert opt_bufferless(inst).throughput == 2

    def test_infeasible_dropped(self):
        inst = make_instance(8, [(0, 6, 0, 2)])
        assert opt_bufferless(inst).throughput == 0

    def test_rejects_rl(self):
        inst = Instance(6, (Message(0, 4, 1, 0, 9),))
        with pytest.raises(ValueError, match="right-to-left"):
            opt_bufferless(inst)
        with pytest.raises(ValueError, match="right-to-left"):
            opt_bufferless_bnb(inst)


class TestThreeWayPileup:
    def test_k_identical_zero_slack(self):
        # k identical zero-slack messages over the same edge: one winner
        rows = [(0, 3, 0, 3)] * 4
        inst = make_instance(5, rows)
        assert opt_bufferless(inst).throughput == 1

    def test_k_identical_with_slack(self):
        # slack k-1 gives each message its own line
        k = 4
        rows = [(0, 3, 0, 3 + k - 1)] * k
        inst = make_instance(5, rows)
        assert opt_bufferless(inst).throughput == k


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(30))
    def test_milp_equals_bnb(self, seed):
        rng = np.random.default_rng(1000 + seed)
        inst = random_lr_instance(rng, k_hi=7, max_slack=4)
        a = opt_bufferless(inst)
        b = opt_bufferless_bnb(inst)
        assert a.throughput == b.throughput
        validate_schedule(inst, a.schedule, require_bufferless=True)
        validate_schedule(inst, b.schedule, require_bufferless=True)

    def test_schedules_valid_against_unclipped_instance(self):
        # huge slack exercises the clip-then-rebuild path
        inst = make_instance(6, [(0, 2, 0, 1000), (1, 3, 0, 900)])
        res = opt_bufferless(inst)
        assert res.throughput == 2
        validate_schedule(inst, res.schedule, require_bufferless=True)

    def test_bnb_node_limit(self):
        rng = np.random.default_rng(5)
        inst = random_lr_instance(rng, k_lo=6, k_hi=8)
        with pytest.raises(RuntimeError, match="exceeded"):
            opt_bufferless_bnb(inst, node_limit=3)
