"""Execution-backend tests: dispatch, parity, cache keys, pool pinning.

The numpy backend's whole contract is *bit-identical, just faster* — so
most of this file is seeded parity sweeps (kernel and simulator) plus
regression tests for the places where the backend choice must travel:
the solver cache key, pool task payloads, and ``api.solve`` telemetry.
"""

from __future__ import annotations

import os
import random
from unittest import mock

import pytest

from repro import api
from repro.backend import (
    BACKENDS,
    current_backend,
    resolve_backend,
    use_backend,
)
from repro.buffers import ADMISSION_POLICIES
from repro.baselines.buffered_greedy import (
    EDFPolicy,
    FCFSPolicy,
    MinLaxityPolicy,
    NearestDestPolicy,
)
from repro.core.bfl_fast import bfl_fast
from repro.core.bfl_vec import bfl_kernel, bfl_vec, bfl_vec_batch
from repro.core.instance import Instance
from repro.core.message import Message
from repro.engine import cache as cache_mod
from repro.engine.cache import ResultCache, cached_bfl
from repro.engine.pool import run_tasks
from repro.network.faults import FaultPlan, LinkFailure, NodeStall
from repro.network.simulator import simulate
from repro.topology.ring import RingInstance, RingMessage

POLICIES = (EDFPolicy, FCFSPolicy, MinLaxityPolicy, NearestDestPolicy)


# --------------------------------------------------------------------- #
# Seeded generators (plain random.Random: cheap, order-stable)
# --------------------------------------------------------------------- #


def rand_line(rng: random.Random) -> Instance:
    n = rng.randint(3, 24)
    k = rng.randint(0, 40)
    ids = list(range(1, k + 1))
    rng.shuffle(ids)
    msgs = []
    for mid in ids:
        src = rng.randint(0, n - 2)
        dst = rng.randint(src + 1, n - 1)
        rel = rng.randint(0, 25)
        slack = rng.randint(-3, 10)
        dl = max(rel + (dst - src), rel + (dst - src) + slack)
        msgs.append(Message(id=mid, source=src, dest=dst, release=rel, deadline=dl))
    return Instance(n=n, messages=tuple(msgs))


def rand_ring(rng: random.Random) -> RingInstance:
    n = rng.randint(3, 16)
    k = rng.randint(0, 30)
    ids = list(range(1, k + 1))
    rng.shuffle(ids)
    msgs = []
    for mid in ids:
        src = rng.randint(0, n - 1)
        span = rng.randint(1, n - 1)
        rel = rng.randint(0, 20)
        slack = rng.randint(-2, 8)
        dl = max(rel + span, rel + span + slack)
        msgs.append(
            RingMessage(
                id=mid,
                n=n,
                source=src,
                dest=(src + span) % n,
                release=rel,
                deadline=dl,
            )
        )
    return RingInstance(n=n, messages=tuple(msgs))


def rand_faults(rng: random.Random, n: int) -> FaultPlan:
    def window() -> tuple[int, int]:
        s = rng.randint(0, 20)
        return s, s + rng.randint(1, 10)

    lf = []
    for _ in range(rng.randint(0, 3)):
        s, e = window()
        lf.append(LinkFailure(link=rng.randint(0, n - 1), start=s, end=e))
    ns = []
    for _ in range(rng.randint(0, 3)):
        s, e = window()
        ns.append(NodeStall(node=rng.randint(0, n - 1), start=s, end=e))
    return FaultPlan(
        link_failures=tuple(lf),
        node_stalls=tuple(ns),
        drop_rate=rng.choice([0.0, 0.1, 0.35]),
        drop_seed=rng.randint(0, 10**6),
    )


# --------------------------------------------------------------------- #
# Dispatch plumbing
# --------------------------------------------------------------------- #


class TestDispatch:
    def test_default_is_python(self):
        assert resolve_backend(None) == "python"
        assert current_backend() is None  # no pin outside use_backend

    def test_explicit_wins(self):
        with use_backend("numpy"):
            assert resolve_backend("python") == "python"

    def test_ambient_context(self):
        with use_backend("numpy"):
            assert current_backend() == "numpy"
            assert resolve_backend(None) == "numpy"
        assert current_backend() is None

    def test_environment_variable(self):
        with mock.patch.dict(os.environ, {"REPRO_BACKEND": "numpy"}):
            assert resolve_backend(None) == "numpy"
        # ambient context still outranks the environment
        with mock.patch.dict(os.environ, {"REPRO_BACKEND": "numpy"}):
            with use_backend("python"):
                assert resolve_backend(None) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("fortran")
        with pytest.raises(ValueError, match="backend"):
            with use_backend("cuda"):
                pass  # pragma: no cover

    def test_backends_tuple(self):
        assert BACKENDS == ("python", "numpy")


# --------------------------------------------------------------------- #
# Kernel parity: bfl_vec is bfl_fast, byte for byte
# --------------------------------------------------------------------- #


def _rand_kernel_instance(rng: random.Random, n=None, k=None) -> Instance:
    n = n or rng.randint(4, 40)
    k = k if k is not None else rng.randint(0, 60)
    ids = list(range(1, k + 1))
    rng.shuffle(ids)
    msgs = []
    for mid in ids:
        src = rng.randint(0, n - 2)
        dst = rng.randint(src + 1, n - 1)
        rel = rng.randint(0, 30)
        slack = rng.randint(-3, 12)
        dl = max(rel + (dst - src), rel + (dst - src) + slack)
        msgs.append(Message(id=mid, source=src, dest=dst, release=rel, deadline=dl))
    return Instance(n=n, messages=tuple(msgs))


class TestKernelParity:
    def test_seeded_sweep(self):
        for seed in range(120):
            rng = random.Random(seed)
            inst = _rand_kernel_instance(rng)
            for clip in (False, True):
                assert bfl_vec(inst, clip_slack=clip) == bfl_fast(
                    inst, clip_slack=clip
                ), f"kernel parity broke at seed={seed} clip={clip}"

    def test_batch_matches_singles(self):
        rng = random.Random(99)
        batch = [_rand_kernel_instance(rng, n=48, k=200) for _ in range(8)]
        for got, want in zip(bfl_vec_batch(batch), [bfl_fast(i) for i in batch]):
            assert got == want

    def test_bfl_kernel_dispatches(self):
        inst = _rand_kernel_instance(random.Random(3))
        assert bfl_kernel(inst, backend="numpy") == bfl_kernel(inst, backend="python")
        with use_backend("numpy"):
            assert bfl_kernel(inst) == bfl_fast(inst)


# --------------------------------------------------------------------- #
# Simulator parity: 200+ random seeds, line + ring, faults, capacities
# --------------------------------------------------------------------- #


def _assert_sim_parity(
    inst, policy_cls, faults, cap, tag: str, admission: str | None = None
) -> None:
    kw = {} if admission is None else {"admission": admission}
    a = simulate(
        inst, policy_cls(), faults=faults, buffer_capacity=cap, backend="python", **kw
    )
    b = simulate(
        inst, policy_cls(), faults=faults, buffer_capacity=cap, backend="numpy", **kw
    )
    assert a.schedule == b.schedule, f"schedule diverged: {tag}"
    assert a.delivered_ids == b.delivered_ids, f"delivered diverged: {tag}"
    assert a.drop_events == b.drop_events, f"drop events diverged: {tag}"
    assert a.stats == b.stats, f"stats diverged: {tag}"


class TestSimulatorParity:
    @pytest.mark.parametrize("block", range(10))
    def test_seeded_sweep(self, block):
        # 10 blocks x 20 seeds = 200 seeds; each seed exercises line and
        # ring under one policy, with and without a fault plan, at
        # unbounded and finite buffer capacity: 1600 paired runs total.
        for seed in range(block * 20, block * 20 + 20):
            rng = random.Random(seed)
            for maker, shape in ((rand_line, "line"), (rand_ring, "ring")):
                inst = maker(rng)
                pol = POLICIES[seed % 4]
                for fmode in ("none", "plan"):
                    faults = rand_faults(rng, inst.n) if fmode == "plan" else None
                    for cap in (None, rng.randint(0, 3)):
                        _assert_sim_parity(
                            inst,
                            pol,
                            faults,
                            cap,
                            f"seed={seed} {shape} {pol.__name__} "
                            f"faults={fmode} cap={cap}",
                        )

    @pytest.mark.parametrize("admission", ADMISSION_POLICIES)
    def test_admission_sweep(self, admission):
        # fast tier-1 subset of the bounded-buffer envelope: every
        # admission policy, line + ring, finite capacities, alternating
        # fault plans — the REPRO_BENCH_FULL sweep below scales this up
        for seed in range(12):
            rng = random.Random(7000 + seed)
            for maker, shape in ((rand_line, "line"), (rand_ring, "ring")):
                inst = maker(rng)
                pol = POLICIES[seed % 4]
                faults = rand_faults(rng, inst.n) if seed % 2 else None
                cap = rng.randint(0, 2)
                _assert_sim_parity(
                    inst,
                    pol,
                    faults,
                    cap,
                    f"seed={seed} {shape} {pol.__name__} {admission} cap={cap}",
                    admission=admission,
                )

    def test_instance_carried_capacity_matches_kwarg(self):
        # `Instance.buffer_capacity` and the simulate(buffer_capacity=)
        # kwarg must be the same model, on both backends
        rng = random.Random(31)
        inst = rand_line(rng)
        for backend in ("python", "numpy"):
            a = simulate(inst.with_buffer_capacity(1), EDFPolicy(), backend=backend)
            b = simulate(inst, EDFPolicy(), buffer_capacity=1, backend=backend)
            assert (a.schedule, a.delivered_ids, a.drop_events, a.stats) == (
                b.schedule,
                b.delivered_ids,
                b.drop_events,
                b.stats,
            )

    @pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH_FULL"),
        reason="long bounded-buffer parity sweep (set REPRO_BENCH_FULL=1)",
    )
    def test_admission_sweep_full(self):
        # 100 seeds x 3 admissions x line/ring x faults on/off x caps 0-3
        for admission in ADMISSION_POLICIES:
            for seed in range(100):
                rng = random.Random(90000 + seed)
                for maker, shape in ((rand_line, "line"), (rand_ring, "ring")):
                    inst = maker(rng)
                    pol = POLICIES[seed % 4]
                    for fmode in ("none", "plan"):
                        faults = rand_faults(rng, inst.n) if fmode == "plan" else None
                        for cap in (0, rng.randint(1, 3)):
                            _assert_sim_parity(
                                inst,
                                pol,
                                faults,
                                cap,
                                f"seed={seed} {shape} {pol.__name__} "
                                f"{admission} faults={fmode} cap={cap}",
                                admission=admission,
                            )

    def test_unsupported_policy_falls_back(self):
        class CustomEDF(EDFPolicy):
            pass

        inst = rand_line(random.Random(5))
        # a subclass is outside the vectorized envelope (it may override
        # anything) — the numpy request must still produce EDF's answer
        # via the python loop, not crash
        a = simulate(inst, CustomEDF(), backend="numpy")
        b = simulate(inst, EDFPolicy(), backend="python")
        assert a.delivered_ids == b.delivered_ids

    def test_mesh_falls_back(self):
        from repro.topology.mesh import MeshInstance, MeshMessage

        inst = MeshInstance(
            rows=3,
            cols=3,
            messages=(
                MeshMessage(id=1, source=(0, 0), dest=(2, 2), release=0, deadline=10),
            ),
        )
        a = simulate(inst, EDFPolicy(), backend="numpy")
        b = simulate(inst, EDFPolicy(), backend="python")
        assert a.delivered_ids == b.delivered_ids == frozenset({1})


# --------------------------------------------------------------------- #
# Facade + cache + pool threading
# --------------------------------------------------------------------- #


class TestSolveBackend:
    def test_telemetry_and_parity(self):
        inst = rand_line(random.Random(11))
        py = api.solve(inst, "bufferless", "bfl", backend="python")
        vec = api.solve(inst, "bufferless", "bfl", backend="numpy")
        assert py.telemetry["backend"] == "python"
        assert vec.telemetry["backend"] == "numpy"
        assert py.schedule == vec.schedule

    def test_simulated_method_honours_backend(self):
        inst = rand_line(random.Random(12))
        py = api.solve(inst, "buffered", "greedy", policy="edf", backend="python")
        vec = api.solve(inst, "buffered", "greedy", policy="edf", backend="numpy")
        assert py.schedule == vec.schedule
        assert py.delivered == vec.delivered

    def test_online_backend_parity(self):
        from repro.online import run_online

        inst = rand_line(random.Random(13))
        py = run_online(inst, "greedy", backend="python")
        vec = run_online(inst, "greedy", backend="numpy")
        assert py == vec


class TestCacheKeys:
    def test_backend_segregates_key(self):
        inst = rand_line(random.Random(21))
        base = ResultCache.key(inst, "bfl", {"clip_slack": False})
        py = ResultCache.key(inst, "bfl", {"clip_slack": False}, backend="python")
        vec = ResultCache.key(inst, "bfl", {"clip_slack": False}, backend="numpy")
        assert len({base, py, vec}) == 3

    def test_no_cross_backend_hit(self):
        inst = rand_line(random.Random(22))
        previous = cache_mod._default
        try:
            cache = cache_mod.configure(enabled=True)
            a = cached_bfl(inst, backend="python")
            assert (cache.stats.hits, cache.stats.misses) == (0, 1)
            b = cached_bfl(inst, backend="numpy")
            # bit-identical value, but it must NOT have come from the
            # python slot — a cross-hit would mask a parity regression
            assert (cache.stats.hits, cache.stats.misses) == (0, 2)
            assert a == b
            cached_bfl(inst, backend="numpy")
            assert (cache.stats.hits, cache.stats.misses) == (1, 2)
        finally:
            cache_mod._default = previous

    def test_capacity_segregates_key(self):
        # buffer_capacity lives on the instance and flows into
        # content_hash, so bounded/unbounded variants of the same message
        # set occupy distinct cache slots; the unbounded key is the
        # legacy key (byte-identical hash)
        inst = rand_line(random.Random(24))
        base = ResultCache.key(inst, "ca")
        same = ResultCache.key(inst.with_buffer_capacity(None), "ca")
        capped = ResultCache.key(inst.with_buffer_capacity(2), "ca")
        other = ResultCache.key(inst.with_buffer_capacity(3), "ca")
        assert base == same
        assert len({base, capped, other}) == 3

    def test_admission_segregates_key(self):
        inst = rand_line(random.Random(25))
        default = ResultCache.key(inst, "sim", {"admission": "drop-new"})
        evict = ResultCache.key(
            inst, "sim", {"admission": "evict-lowest-priority"}
        )
        assert default != evict

    def test_no_cross_capacity_hit(self):
        inst = rand_line(random.Random(26))
        previous = cache_mod._default
        try:
            cache = cache_mod.configure(enabled=True)
            from repro.engine.cache import cached_ca

            cached_ca(inst)
            assert (cache.stats.hits, cache.stats.misses) == (0, 1)
            cached_ca(inst.with_buffer_capacity(1))
            assert (cache.stats.hits, cache.stats.misses) == (0, 2)
            cached_ca(inst)
            assert (cache.stats.hits, cache.stats.misses) == (1, 2)
        finally:
            cache_mod._default = previous

    def test_ambient_backend_reaches_cache_key(self):
        inst = rand_line(random.Random(23))
        previous = cache_mod._default
        try:
            cache = cache_mod.configure(enabled=True)
            with use_backend("numpy"):
                cached_bfl(inst)
            cached_bfl(inst)  # ambient default: python
            assert (cache.stats.hits, cache.stats.misses) == (0, 2)
        finally:
            cache_mod._default = previous


def _report_backend() -> str:
    return current_backend()


class TestPoolBackend:
    def test_serial_tasks_pinned(self):
        results, _ = run_tasks(_report_backend, [()] * 3, jobs=1, backend="numpy")
        assert results == ["numpy"] * 3

    def test_ambient_backend_ships_in_payload(self):
        with use_backend("numpy"):
            results, _ = run_tasks(_report_backend, [()] * 2, jobs=1)
        assert results == ["numpy"] * 2

    def test_pool_workers_pinned(self):
        results, _ = run_tasks(_report_backend, [()] * 2, jobs=2, backend="numpy")
        assert results == ["numpy"] * 2

    def test_engine_field(self):
        from repro.engine import Engine

        results, _ = Engine(jobs=1, backend="numpy").map(_report_backend, [()] * 2)
        assert results == ["numpy"] * 2

    def test_resilient_runner_pinned(self):
        from repro.engine.resilience import run_tasks_resilient

        results, _ = run_tasks_resilient(_report_backend, [()] * 2, jobs=1, backend="numpy")
        assert results == ["numpy"] * 2


# --------------------------------------------------------------------- #
# Bench smoke: tiny scale always; the 10x claim behind REPRO_BENCH_FULL
# --------------------------------------------------------------------- #


class TestBenchSmoke:
    def test_tiny_scale(self):
        from repro.engine.bench import BACKEND_SMOKE_SIZES, bench_backends

        payload = bench_backends(
            sizes=BACKEND_SMOKE_SIZES, batch=(24, 32, 400), repeats=3
        )
        # parity is asserted inside bench_backends before any timing; at
        # tiny scale the only perf contract is "vectorization must not
        # hurt": the amortized kernel batch stays within 1.2x of python.
        kb = payload["kernel_batch"]
        assert kb["numpy_seconds"] <= 1.2 * kb["python_seconds"], payload

    @pytest.mark.slow
    @pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH_FULL"),
        reason="full-scale backend bench (set REPRO_BENCH_FULL=1)",
    )
    @pytest.mark.timeout(600)
    def test_full_scale_speedup(self):
        from repro.engine.bench import bench_backends

        payload = bench_backends(sizes=((256, 20000),))
        assert payload["simulator"]["min_speedup"] >= 10.0, payload["simulator"]
        assert payload["online"]["min_speedup"] >= 10.0, payload["online"]
