"""Tests for exact buffered scheduling on rings."""

import numpy as np
import pytest

from repro.topology.ring_exact import opt_ring_bufferless
from repro.topology.ring_exact import opt_ring_buffered
from repro.topology.ring import RingInstance, RingMessage
from repro.workloads.rings import random_ring_instance, ring_hotspot


class TestBasics:
    def test_empty(self):
        assert opt_ring_buffered(RingInstance(4, ())).throughput == 0

    def test_single_wrapping_message(self):
        inst = RingInstance(5, (RingMessage(0, 3, 1, 0, 10, n=5),))
        res = opt_ring_buffered(inst)
        assert res.throughput == 1

    def test_infeasible_ignored(self):
        inst = RingInstance(5, (RingMessage(0, 0, 3, 0, 2, n=5),))
        assert opt_ring_buffered(inst).throughput == 0

    def test_schedule_is_conflict_free(self):
        rng = np.random.default_rng(0)
        inst = ring_hotspot(rng, n=6, k=8, max_slack=3)
        res = opt_ring_buffered(inst)
        # RingSchedule construction verifies per-(link, step) capacity
        assert res.throughput <= len(inst)


class TestBufferingOnRings:
    def test_i1_gadget_wrapped(self):
        """The Theorem 4.5 k=1 gadget, embedded across the wrap point:
        buffering still beats bufferless on a ring."""
        n = 5
        # line gadget (0->2, 0->1, 1->2) shifted so node 0 maps to n-1
        shift = n - 1
        inst = RingInstance(
            n,
            (
                RingMessage(0, shift, (shift + 2) % n, 0, 3, n),
                RingMessage(1, shift, (shift + 1) % n, 1, 2, n),
                RingMessage(2, (shift + 1) % n, (shift + 2) % n, 1, 2, n),
            ),
        )
        assert opt_ring_bufferless(inst).throughput == 2
        res = opt_ring_buffered(inst)
        assert res.throughput == 3

    @pytest.mark.parametrize("seed", range(15))
    def test_dominates_bufferless(self, seed):
        rng = np.random.default_rng(9800 + seed)
        inst = random_ring_instance(
            rng, n=int(rng.integers(4, 7)), k=int(rng.integers(2, 7)), max_slack=3
        )
        assert (
            opt_ring_buffered(inst).throughput
            >= opt_ring_bufferless(inst).throughput
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_within_factor_two_of_bufferless(self, seed):
        from repro.topology.ring import ring_bfl

        rng = np.random.default_rng(9900 + seed)
        inst = random_ring_instance(rng, n=6, k=6, max_slack=4)
        greedy = ring_bfl(inst).throughput
        exact_bl = opt_ring_bufferless(inst).throughput
        assert 2 * greedy >= exact_bl
