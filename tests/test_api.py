"""Tests for the repro.api solver facade."""

import numpy as np
import pytest

from repro import api
from repro.baselines import (
    EDFPolicy,
    FCFSPolicy,
    edf_bufferless,
    first_fit,
    min_laxity_first,
    random_assignment,
)
from repro.core.bfl import EDF, bfl
from repro.core.bfl_fast import bfl_fast
from repro.core.dbfl import dbfl
from repro.core.instance import Instance
from repro.core.message import Message
from repro.core.solve import BidirectionalSchedule
from repro.exact import opt_buffered, opt_bufferless, opt_bufferless_bnb
from repro.network.simulator import simulate
from repro.workloads import general_instance


@pytest.fixture
def inst():
    return general_instance(np.random.default_rng(42), n=12, k=10)


@pytest.fixture
def small():
    return general_instance(np.random.default_rng(5), n=8, k=6)


class TestBufferlessRoundTrips:
    """Every facade path must match its legacy entrypoint exactly."""

    def test_bfl_default(self, inst):
        result = api.solve(inst, "bufferless", "bfl")
        assert result.schedule == bfl_fast(inst)
        assert result.optimal is None
        assert result.delivered == result.schedule.throughput

    def test_bfl_named_tie_break(self, inst):
        result = api.solve(inst, "bufferless", "bfl", tie_break="edf")
        assert result.schedule == bfl(inst, tie_break=EDF)

    def test_exact_milp(self, inst):
        result = api.solve(inst, "bufferless", "exact")
        legacy = opt_bufferless(inst)
        assert result.schedule == legacy.schedule
        assert result.optimal == legacy.optimal

    def test_exact_bnb(self, inst):
        result = api.solve(inst, "bufferless", "exact", solver="bnb")
        assert result.schedule == opt_bufferless_bnb(inst).schedule
        assert result.delivered == opt_bufferless(inst).throughput

    def test_greedy_orders(self, inst):
        for order, legacy in [
            ("edf", edf_bufferless),
            ("arrival", first_fit),
            ("laxity", min_laxity_first),
        ]:
            result = api.solve(inst, "bufferless", "greedy", order=order)
            assert result.schedule == legacy(inst), order

    def test_greedy_random_needs_rng(self, inst):
        result = api.solve(
            inst, "bufferless", "greedy", order="random", rng=np.random.default_rng(7)
        )
        assert result.schedule == random_assignment(inst, np.random.default_rng(7))
        with pytest.raises(TypeError):
            api.solve(inst, "bufferless", "greedy", order="random")


class TestBufferedRoundTrips:
    def test_exact(self, small):
        result = api.solve(small, "buffered", "exact")
        legacy = opt_buffered(small)
        assert result.schedule == legacy.schedule
        assert result.optimal == legacy.optimal

    def test_bfl_is_dbfl(self, inst):
        result = api.solve(inst, "buffered", "bfl")
        assert result.schedule == dbfl(inst).schedule
        assert "steps" in result.telemetry

    def test_greedy_named_policies(self, inst):
        for name, policy_cls in [("edf", EDFPolicy), ("fcfs", FCFSPolicy)]:
            result = api.solve(inst, "buffered", "greedy", policy=name)
            assert result.schedule == simulate(inst, policy_cls()).schedule, name

    def test_greedy_policy_instance(self, inst):
        result = api.solve(inst, "buffered", "greedy", policy=EDFPolicy())
        assert result.schedule == simulate(inst, EDFPolicy()).schedule

    def test_greedy_buffer_capacity(self, inst):
        result = api.solve(inst, "buffered", "greedy", buffer_capacity=1)
        assert result.schedule == simulate(inst, EDFPolicy(), buffer_capacity=1).schedule


class TestOnlineRegime:
    """regime="online" dispatches into repro.online and reports a ratio."""

    def test_online_bfl(self, inst):
        from repro.online import online_bfl

        result = api.solve(inst, "online", "bfl")
        assert result.schedule == online_bfl(inst).schedule
        assert result.regime == "online" and result.method == "bfl"
        assert result.optimal is None

    def test_online_dbfl_and_greedy(self, inst):
        from repro.online import online_dbfl, online_greedy

        assert api.solve(inst, "online", "dbfl").schedule == online_dbfl(inst).schedule
        assert (
            api.solve(inst, "online", "greedy", policy="fcfs").schedule
            == online_greedy(inst, policy="fcfs").schedule
        )

    def test_competitive_ratio_against_exact(self, small):
        result = api.solve(small, "online", "bfl", baseline="exact")
        opt = result.upper
        assert result.competitive_ratio == pytest.approx(
            1.0 if opt == 0 else result.delivered / opt
        )
        assert 0.0 <= result.competitive_ratio <= 1.0

    def test_baseline_none_skips_ratio(self, inst):
        result = api.solve(inst, "online", "bfl", baseline="none")
        assert result.competitive_ratio is None
        with pytest.raises(ValueError, match="baseline"):
            api.solve(inst, "online", "bfl", baseline="oracle")

    def test_offline_results_have_no_ratio(self, inst):
        assert api.solve(inst, "bufferless", "bfl").competitive_ratio is None

    def test_telemetry_carries_decision_stats(self, inst):
        result = api.solve(inst, "online", "bfl")
        assert result.telemetry["decisions"] == len(inst.messages)
        assert set(result.telemetry["drops"]) == {"policy", "fault"}

    def test_online_with_faults(self, inst):
        from repro.network.faults import random_fault_plan

        plan = random_fault_plan(
            np.random.default_rng(3), inst, drop_rate=0.2, link_failures=1
        )
        result = api.solve(inst, "online", "bfl", faults=plan)
        drops = result.telemetry["drops"]
        assert drops["policy"] + drops["fault"] + result.delivered == len(inst.messages)


class TestDispatchMatrix:
    """Every (regime, method) pair either solves or raises a typed ValueError."""

    @pytest.mark.parametrize("regime", api.REGIMES)
    @pytest.mark.parametrize("method", api.METHODS)
    def test_pair_solves_or_names_options(self, small, regime, method):
        if method in api.DISPATCH[("line", regime)]:
            result = api.solve(small, regime, method)
            assert isinstance(result, api.ScheduleResult)
            assert result.regime == regime and result.method == method
            assert result.topology == "line"
            assert 0 <= result.delivered <= len(small.messages)
        else:
            with pytest.raises(ValueError) as err:
                api.solve(small, regime, method)
            for valid in api.DISPATCH[("line", regime)]:
                assert valid in str(err.value)

    def test_matrix_is_total(self):
        # the line topology still covers every regime and every method
        line_regimes = {r for (t, r) in api.DISPATCH if t == "line"}
        assert line_regimes == set(api.REGIMES)
        assert set(api.METHODS) == {
            m for (t, _), ms in api.DISPATCH.items() if t == "line" for m in ms
        }

    def test_matrix_covers_all_topologies(self):
        from repro import topology

        topologies = {t for (t, _) in api.DISPATCH}
        assert topologies == set(topology.topology_names())
        # every registered topology can at least solve bufferless
        for topo in topologies:
            assert api.DISPATCH[(topo, "bufferless")]


class TestResultSerialization:
    def test_iter_yields_trajectories(self, inst):
        result = api.solve(inst, "bufferless", "bfl")
        assert list(result) == list(result.schedule.trajectories)

    def test_summary_keys(self, inst):
        result = api.solve(inst, "bufferless", "bfl")
        summary = result.summary()
        assert summary["regime"] == "bufferless"
        assert summary["delivered"] == result.schedule.throughput
        assert "competitive_ratio" not in summary
        online = api.solve(inst, "online", "bfl", baseline="bfl").summary()
        assert "competitive_ratio" in online

    def test_to_dict_is_json_round_trippable(self, inst):
        import json

        payload = api.solve(inst, "online", "bfl").to_dict()
        assert payload["format"] == "repro-schedule-result"
        assert payload["version"] == api.ScheduleResult.SCHEMA_VERSION == 5
        assert payload["topology"] == "line"
        decoded = json.loads(json.dumps(payload))
        assert decoded["delivered"] == payload["delivered"]
        assert len(decoded["schedule"]["trajectories"]) == payload["delivered"]


class TestValidation:
    def test_unknown_regime_method(self, inst):
        with pytest.raises(ValueError, match="regime"):
            api.solve(inst, "quantum")
        with pytest.raises(ValueError, match="method"):
            api.solve(inst, "bufferless", "magic")

    def test_online_rejects_offline_only_methods(self, inst):
        with pytest.raises(ValueError, match="online"):
            api.solve(inst, "online", "exact")
        with pytest.raises(ValueError, match="dbfl"):
            api.solve(inst, "bufferless", "dbfl")

    def test_unknown_option(self, inst):
        with pytest.raises(TypeError, match="frobnicate"):
            api.solve(inst, "bufferless", "bfl", frobnicate=1)

    def test_unknown_solver_policy(self, inst):
        with pytest.raises(ValueError, match="solver"):
            api.solve(inst, "bufferless", "exact", solver="abacus")
        with pytest.raises(ValueError, match="policy"):
            api.solve(inst, "buffered", "greedy", policy="psychic")

    def test_telemetry_always_has_seconds(self, inst):
        result = api.solve(inst, "bufferless", "bfl")
        assert result.telemetry["seconds"] >= 0

    def test_result_is_frozen(self, inst):
        result = api.solve(inst, "bufferless", "bfl")
        with pytest.raises(AttributeError):
            result.regime = "buffered"


class TestTelemetryCounters:
    def test_counters_when_traced(self, inst):
        from repro import obs
        from repro.obs.tracer import Tracer

        with obs.use(Tracer(enabled=True)):
            result = api.solve(inst, "bufferless", "bfl")
        assert result.telemetry["counters"]["bfl.launches"] == 1

    def test_no_counters_when_disabled(self, inst):
        from repro import obs
        from repro.obs.tracer import Tracer

        with obs.use(Tracer(enabled=False)):
            result = api.solve(inst, "bufferless", "bfl")
        assert "counters" not in result.telemetry


class TestSolveBidirectional:
    def _mixed(self, seed=3, n=12, k=10):
        rng = np.random.default_rng(seed)
        msgs = []
        for i in range(k):
            a = int(rng.integers(0, n))
            b = int(rng.integers(0, n))
            while b == a:
                b = int(rng.integers(0, n))
            r = int(rng.integers(0, 6))
            msgs.append(Message(i, a, b, r, r + abs(b - a) + int(rng.integers(0, 5))))
        return Instance(n, tuple(msgs))

    def test_returns_bidirectional_schedule(self):
        inst = self._mixed()
        result = api.solve_bidirectional(inst)
        assert isinstance(result, BidirectionalSchedule)
        assert result.throughput == len(result.delivered_ids)

    def test_matches_direct_split_solve(self):
        inst = self._mixed(seed=11)
        via_api = api.solve_bidirectional(inst)
        lr_half, rl_half = inst.split_directions()
        assert via_api.lr == bfl_fast(lr_half)
        assert via_api.rl == bfl_fast(rl_half.mirrored())

    def test_custom_scheduler(self):
        inst = self._mixed(seed=4)
        result = api.solve_bidirectional(inst, scheduler=edf_bufferless)
        assert result.throughput >= 0

    def test_exported_at_package_root(self):
        import repro

        assert repro.solve is api.solve
        assert repro.solve_bidirectional is api.solve_bidirectional
        assert repro.ScheduleResult is api.ScheduleResult
